package syncopt

import (
	"strings"
	"testing"

	"repro/internal/obl/ast"
	"repro/internal/obl/callgraph"
	"repro/internal/obl/commute"
	"repro/internal/obl/parser"
	"repro/internal/obl/sema"
)

// prepare parses, checks, analyzes and marks a program.
func prepare(t *testing.T, src string) (*ast.Program, *sema.Info, *callgraph.Graph) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	cg := callgraph.Build(info)
	commute.New(info, cg).AnalyzeLoops()
	return prog, info, cg
}

// applyPolicy runs the full per-policy transformation on a fresh parse.
func applyPolicy(t *testing.T, src string, policy Policy) *ast.Program {
	t.Helper()
	prog, info, cg := prepare(t, src)
	if err := Apply(prog, info, cg, policy); err != nil {
		t.Fatal(err)
	}
	if _, err := sema.Check(prog); err != nil {
		t.Fatalf("transformed program fails checking: %v\n%s", err, ast.Print(prog))
	}
	return prog
}

const twoUpdates = `
extern f(x: float): float cost 10;
class Acc {
  a: float;
  b: float;
  method bump(x: float) {
    let v: float = f(x);
    this.a = this.a + v;
    this.b = this.b + v;
  }
}
func run(acc: Acc, n: int) {
  for i in 0..n { acc.bump(1.0); }
}
func main() { let acc: Acc = new Acc(); run(acc, 4); print acc.a; }
`

func countSync(p *ast.Program) int {
	return strings.Count(ast.Print(p), "acquire(")
}

func TestOriginalPlacementOnePerUpdate(t *testing.T) {
	prog := applyPolicy(t, twoUpdates, Original)
	if got := countSync(prog); got != 2 {
		t.Errorf("original sync sites = %d, want 2\n%s", got, ast.Print(prog))
	}
	if strings.Contains(ast.Print(prog), UnsyncSuffix) {
		t.Error("original policy generated unsync variants")
	}
}

func TestBoundedMergesAndExpands(t *testing.T) {
	prog := applyPolicy(t, twoUpdates, Bounded)
	text := ast.Print(prog)
	// The two update regions merge inside bump, and the caller takes over
	// the lock around the call to the unsync variant.
	if !strings.Contains(text, "bump__unsync") {
		t.Errorf("bounded did not expand bump:\n%s", text)
	}
}

func TestAggressiveLiftsLoop(t *testing.T) {
	prog := applyPolicy(t, twoUpdates, Aggressive)
	text := ast.Print(prog)
	// With no recursion anywhere, aggressive lifts the lock out of the
	// run loop body's iterations entirely: the parallel body acquires acc
	// once per iteration around bump__unsync.
	if !strings.Contains(text, "acquire(acc.mutex)") {
		t.Errorf("aggressive did not lift to caller:\n%s", text)
	}
}

func TestBoundedDeclinesCycles(t *testing.T) {
	src := `
extern f(x: float): float cost 10;
class Acc {
  a: float;
  method bump(x: float, d: int) {
    let v: float = helper(x, d);
    this.a = this.a + v;
  }
}
func helper(x: float, d: int): float {
  if d <= 0 { return f(x); }
  return helper(x, d - 1);
}
func run(acc: Acc, n: int) {
  for i in 0..n { acc.bump(1.0, 2); }
}
func main() { let acc: Acc = new Acc(); run(acc, 4); print acc.a; }
`
	bounded := ast.Print(applyPolicy(t, src, Bounded))
	aggressive := ast.Print(applyPolicy(t, src, Aggressive))
	// The region around the call would contain the recursive helper:
	// Bounded declines the expansion; Aggressive performs it.
	if strings.Contains(bounded, "bump__unsync(") &&
		strings.Contains(bounded, "acquire(acc.mutex) {\n    acc.bump__unsync") {
		t.Errorf("bounded expanded across a cycle:\n%s", bounded)
	}
	if !strings.Contains(aggressive, "bump__unsync") {
		t.Errorf("aggressive did not expand:\n%s", aggressive)
	}
}

func TestPureExpr(t *testing.T) {
	pure := []ast.Expr{
		&ast.Ident{Name: "x"},
		&ast.ThisExpr{},
		&ast.FieldExpr{X: &ast.ThisExpr{}, Name: "f"},
		&ast.IndexExpr{X: &ast.Ident{Name: "a"}, Index: &ast.IntLit{Val: 3}},
		&ast.BinExpr{L: &ast.IntLit{Val: 1}, R: &ast.IntLit{Val: 2}},
		&ast.UnExpr{X: &ast.BoolLit{Val: true}},
	}
	for _, e := range pure {
		if !pureExpr(e) {
			t.Errorf("pureExpr(%s) = false", ast.ExprString(e))
		}
	}
	impure := []ast.Expr{
		&ast.CallExpr{Name: "g"},
		&ast.IndexExpr{X: &ast.Ident{Name: "a"}, Index: &ast.CallExpr{Name: "g"}},
		&ast.NewExpr{Type: &ast.ClassType{Name: "C"}},
	}
	for _, e := range impure {
		if pureExpr(e) {
			t.Errorf("pureExpr(%s) = true", ast.ExprString(e))
		}
	}
}

func TestCollectIdentsAndAssignsAny(t *testing.T) {
	e := &ast.FieldExpr{X: &ast.IndexExpr{
		X:     &ast.Ident{Name: "arr"},
		Index: &ast.Ident{Name: "i"},
	}, Name: "f"}
	vars := map[string]bool{}
	collectIdents(e, vars)
	if !vars["arr"] || !vars["i"] || len(vars) != 2 {
		t.Errorf("collectIdents = %v", vars)
	}
	body := &ast.Block{Stmts: []ast.Stmt{
		&ast.AssignStmt{LHS: &ast.Ident{Name: "i"}, RHS: &ast.IntLit{Val: 0}},
	}}
	if !assignsAny(body, vars) {
		t.Error("assignsAny missed direct assignment")
	}
	if assignsAny(body, map[string]bool{"other": true}) {
		t.Error("assignsAny false positive")
	}
	loop := &ast.Block{Stmts: []ast.Stmt{
		&ast.ForStmt{Var: "i", Lo: &ast.IntLit{}, Hi: &ast.IntLit{}, Body: &ast.Block{}},
	}}
	if !assignsAny(loop, vars) {
		t.Error("assignsAny missed loop variable")
	}
}

func TestStripSyncBlocks(t *testing.T) {
	update := &ast.AssignStmt{
		LHS: &ast.FieldExpr{X: &ast.ThisExpr{}, Name: "v"},
		RHS: &ast.IntLit{Val: 1},
	}
	b := &ast.Block{Stmts: []ast.Stmt{
		&ast.SyncBlock{Lock: &ast.ThisExpr{}, Body: &ast.Block{Stmts: []ast.Stmt{update}}},
	}}
	stripSyncBlocks(b)
	if len(collectSyncLocks(b)) != 0 {
		t.Error("sync blocks survive stripping")
	}
	// The update must still be reachable (inside the spliced block).
	if !strings.Contains(printStmts(b), "this.v = 1") {
		t.Errorf("update lost: %s", printStmts(b))
	}
}

func printStmts(b *ast.Block) string {
	f := &ast.FuncDecl{Name: "t", Body: b}
	return ast.PrintFunc(f)
}

func TestApplyFlaggedSiteAccounting(t *testing.T) {
	prog, info, cg := prepare(t, twoUpdates)
	fi, err := ApplyFlagged(prog, info, cg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.NumSites <= 0 {
		t.Fatal("no sites created")
	}
	for _, p := range AllPolicies {
		vec := fi.Enabled[p]
		if len(vec) != fi.NumSites {
			t.Fatalf("%s: vector length %d, want %d", p, len(vec), fi.NumSites)
		}
		any := false
		for _, b := range vec {
			any = any || b
		}
		if !any {
			t.Errorf("%s enables no sites", p)
		}
	}
	// The policies must enable different site sets here (original keeps the
	// fine-grain sites; aggressive hoists).
	same := true
	for i := range fi.Enabled[Original] {
		if fi.Enabled[Original][i] != fi.Enabled[Aggressive][i] {
			same = false
		}
	}
	if same {
		t.Error("original and aggressive enable identical sites")
	}
	// Transformed AST still checks, and all remaining regions carry sites.
	if _, err := sema.Check(prog); err != nil {
		t.Fatalf("flagged program fails checking: %v", err)
	}
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			for _, sb := range collectSyncLocks(m.Body) {
				if sb.Site <= 0 {
					t.Errorf("unconditional region survived in flagged mode: %s", ast.PrintFunc(m))
				}
			}
		}
	}
}

func TestApplyFlaggedNoUnsyncVariants(t *testing.T) {
	prog, info, cg := prepare(t, twoUpdates)
	if _, err := ApplyFlagged(prog, info, cg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ast.Print(prog), UnsyncSuffix) {
		t.Error("flagged mode generated unsync variants")
	}
}
