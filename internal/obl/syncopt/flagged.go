package syncopt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obl/ast"
	"repro/internal/obl/callgraph"
	"repro/internal/obl/sema"
)

// FlaggedInfo describes the flag-dispatch compilation of a program: the
// §4.2 single-version alternative. The compiler generates one version of
// the code with a conditional acquire or release construct at every site
// that may acquire or release a lock in any of the synchronization
// optimization policies; each site has a flag, and the generated code
// switches policies by changing the values of the flags. The advantage is
// the guarantee of no code growth; the disadvantage is the residual flag
// checking overhead at each conditional site.
type FlaggedInfo struct {
	// NumSites is the number of conditional synchronization sites.
	NumSites int
	// Enabled maps each policy to its flag vector (index = site ID - 1).
	Enabled map[Policy][]bool
}

// ActiveFor reports whether a synchronization site acquires its lock under
// the given policy: site zero (an unconditional region) always does, and a
// conditional site does when the policy's flag for it is set. This is the
// per-policy placement fact consumers like the static safety analyzer need
// to reconstruct each policy's view of the flag-dispatch program.
func (fi *FlaggedInfo) ActiveFor(site int, p Policy) bool {
	if site <= 0 {
		return true
	}
	vec := fi.Enabled[p]
	if site > len(vec) {
		return false
	}
	return vec[site-1]
}

// ActiveSites returns the number of sites a policy enables.
func (fi *FlaggedInfo) ActiveSites(p Policy) int {
	n := 0
	for _, on := range fi.Enabled[p] {
		if on {
			n++
		}
	}
	return n
}

// ApplyFlagged rewrites prog in place into the flag-dispatch form: every
// critical region any policy would create becomes a conditional region
// with its own site ID, and the returned FlaggedInfo records which sites
// each policy enables. Regions that no policy enables are pruned.
//
// The transformation mirrors Apply's, but instead of producing one clone
// per policy it annotates a single program: coalescing and lifting create
// enclosing sites enabled for the policies that perform them (Aggressive
// always; Bounded when the region reaches no call-graph cycle, §3) and
// disable the covered interior sites for those policies. Interprocedural
// lifting wraps call sites in conditional regions instead of generating
// unsynchronized callee variants, so there is genuinely a single version
// of every function.
func ApplyFlagged(prog *ast.Program, info *sema.Info, cg *callgraph.Graph) (*FlaggedInfo, error) {
	f := &frw{
		prog: prog, info: info, cg: cg,
		syncSet:    map[string]bool{},
		visited:    map[string]bool{},
		classMemo:  map[string]*flagClass{},
		expandMemo: map[string]*expandDecision{},
		syncFree:   map[string]int{},
	}
	f.computeSyncSet()
	// Default placement: every object update in its own region, enabled
	// for every policy.
	for _, fi := range info.AllFuncs() {
		if f.syncSet[fi.FullName()] {
			f.defaultPlacement(fi.Decl.Body)
		}
	}
	f.forEachParallelLoop(func(fn *ast.FuncDecl, loop *ast.ForStmt) {
		f.defaultPlacement(loop.Body)
	})
	// Global call-site inventory (before any region can absorb a call).
	f.collectCallSites()
	// Transform bottom-up, then the parallel loop bodies.
	names := make([]string, 0, len(f.syncSet))
	for n := range f.syncSet {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f.transformFunc(n)
	}
	f.forEachParallelLoop(func(fn *ast.FuncDecl, loop *ast.ForStmt) {
		f.transformBlock(loop.Body)
		loop.Body.Stmts = f.optimizeList(loop.Body.Stmts)
	})
	// Prune regions no policy enables.
	for _, fi := range info.AllFuncs() {
		f.prune(fi.Decl.Body)
	}
	if len(f.errs) > 0 {
		return nil, fmt.Errorf("syncopt: flagged: %s", strings.Join(f.errs, "; "))
	}
	out := &FlaggedInfo{NumSites: len(f.sites), Enabled: map[Policy][]bool{}}
	for _, p := range AllPolicies {
		vec := make([]bool, len(f.sites))
		for i, site := range f.sites {
			vec[i] = site[p]
		}
		out.Enabled[p] = vec
	}
	return out, nil
}

// frw is the flag-dispatch rewriter.
type frw struct {
	prog *ast.Program
	info *sema.Info
	cg   *callgraph.Graph

	syncSet map[string]bool
	sites   []map[Policy]bool // index = site ID - 1

	visited map[string]bool

	// callSites lists every statement-level call per callee, with whether
	// its lock expression would be pure. Expansion is all-or-nothing per
	// (callee, policy) because flags are global.
	callSites map[string][]*ast.CallExpr

	classMemo  map[string]*flagClass
	expandMemo map[string]*expandDecision
	syncFree   map[string]int // name+policy -> 0 unknown / 1 free / 2 not

	errs []string
}

// flagClass is the per-function classification used for interprocedural
// lifting.
type flagClass struct {
	lock map[Policy]*lockTarget // nil entry: not classified for that policy
}

// expandDecision is the memoized global decision for a callee: which
// policies take over its synchronization at the call sites, and on which
// lock. Lock targets are captured at decision time, since disabling the
// callee's sites changes its classification afterwards.
type expandDecision struct {
	lock map[Policy]*lockTarget
}

func (f *frw) errorf(format string, args ...any) {
	f.errs = append(f.errs, fmt.Sprintf(format, args...))
}

func (f *frw) newSite(enabled ...Policy) int {
	m := map[Policy]bool{}
	for _, p := range enabled {
		m[p] = true
	}
	f.sites = append(f.sites, m)
	return len(f.sites)
}

func (f *frw) active(sb *ast.SyncBlock, p Policy) bool {
	if sb.Site <= 0 {
		return true
	}
	return f.sites[sb.Site-1][p]
}

func (f *frw) disableIn(s ast.Stmt, policies []Policy) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			f.disableIn(st, policies)
		}
	case *ast.SyncBlock:
		if s.Site > 0 {
			for _, p := range policies {
				delete(f.sites[s.Site-1], p)
			}
		}
		f.disableIn(s.Body, policies)
	case *ast.IfStmt:
		f.disableIn(s.Then, policies)
		if s.Else != nil {
			f.disableIn(s.Else, policies)
		}
	case *ast.WhileStmt:
		f.disableIn(s.Body, policies)
	case *ast.ForStmt:
		f.disableIn(s.Body, policies)
	}
}

func (f *frw) forEachParallelLoop(fn func(*ast.FuncDecl, *ast.ForStmt)) {
	for _, fd := range f.prog.Funcs {
		fd := fd
		var walk func(s ast.Stmt)
		walk = func(s ast.Stmt) {
			switch s := s.(type) {
			case *ast.Block:
				for _, st := range s.Stmts {
					walk(st)
				}
			case *ast.IfStmt:
				walk(s.Then)
				if s.Else != nil {
					walk(s.Else)
				}
			case *ast.WhileStmt:
				walk(s.Body)
			case *ast.ForStmt:
				if s.Parallel {
					fn(fd, s)
					return
				}
				walk(s.Body)
			case *ast.SyncBlock:
				walk(s.Body)
			}
		}
		walk(fd.Body)
	}
}

func (f *frw) computeSyncSet() {
	var roots []string
	f.forEachParallelLoop(func(fn *ast.FuncDecl, loop *ast.ForStmt) {
		callgraph.WalkCalls(loop.Body, func(c *ast.CallExpr) {
			if t, ok := f.info.CallTarget[c]; ok {
				roots = append(roots, t.FullName())
			}
		})
	})
	for _, n := range f.cg.Reachable(roots...) {
		f.syncSet[n] = true
	}
}

func (f *frw) defaultPlacement(b *ast.Block) {
	for i, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if lhs, ok := s.LHS.(*ast.FieldExpr); ok {
				if !pureExpr(lhs.X) {
					f.errorf("impure update target %q cannot be synchronized", ast.ExprString(lhs.X))
					continue
				}
				b.Stmts[i] = &ast.SyncBlock{
					P:    s.P,
					Lock: ast.CloneExpr(lhs.X),
					Body: &ast.Block{P: s.P, Stmts: []ast.Stmt{s}},
					Site: f.newSite(AllPolicies...),
				}
			}
		case *ast.Block:
			f.defaultPlacement(s)
		case *ast.IfStmt:
			f.defaultPlacement(s.Then)
			if s.Else != nil {
				f.defaultPlacement(s.Else)
			}
		case *ast.WhileStmt:
			f.defaultPlacement(s.Body)
		case *ast.ForStmt:
			f.defaultPlacement(s.Body)
		case *ast.SyncBlock:
			f.defaultPlacement(s.Body)
		}
	}
}

// collectCallSites records every statement-level call per callee across
// the sync set and the parallel loop bodies.
func (f *frw) collectCallSites() {
	f.callSites = map[string][]*ast.CallExpr{}
	record := func(b *ast.Block) {
		var walk func(s ast.Stmt)
		walk = func(s ast.Stmt) {
			switch s := s.(type) {
			case *ast.Block:
				for _, st := range s.Stmts {
					walk(st)
				}
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if t, ok := f.info.CallTarget[call]; ok {
						full := t.FullName()
						f.callSites[full] = append(f.callSites[full], call)
					}
				}
			case *ast.IfStmt:
				walk(s.Then)
				if s.Else != nil {
					walk(s.Else)
				}
			case *ast.WhileStmt:
				walk(s.Body)
			case *ast.ForStmt:
				walk(s.Body)
			case *ast.SyncBlock:
				walk(s.Body)
			}
		}
		walk(b)
	}
	for _, fi := range f.info.AllFuncs() {
		if f.syncSet[fi.FullName()] {
			record(fi.Decl.Body)
		}
	}
	f.forEachParallelLoop(func(fn *ast.FuncDecl, loop *ast.ForStmt) {
		record(loop.Body)
	})
}

func (f *frw) transformFunc(full string) {
	if f.visited[full] {
		return
	}
	f.visited[full] = true
	fi := f.info.FuncByFullName(full)
	if fi == nil {
		return
	}
	for _, callee := range f.cg.Succs(full) {
		if f.syncSet[callee] {
			f.transformFunc(callee)
		}
	}
	f.transformBlock(fi.Decl.Body)
	fi.Decl.Body.Stmts = f.optimizeList(fi.Decl.Body.Stmts)
}

func (f *frw) transformBlock(b *ast.Block) {
	for i, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.Block:
			f.transformBlock(s)
			s.Stmts = f.optimizeList(s.Stmts)
		case *ast.IfStmt:
			f.transformBlock(s.Then)
			s.Then.Stmts = f.optimizeList(s.Then.Stmts)
			if s.Else != nil {
				f.transformBlock(s.Else)
				s.Else.Stmts = f.optimizeList(s.Else.Stmts)
			}
		case *ast.WhileStmt:
			f.transformBlock(s.Body)
			s.Body.Stmts = f.optimizeList(s.Body.Stmts)
			if wrapped := f.tryLift(s.Body, nil, s, s.P); wrapped != nil {
				b.Stmts[i] = wrapped
			}
		case *ast.ForStmt:
			if s.Parallel {
				continue
			}
			f.transformBlock(s.Body)
			s.Body.Stmts = f.optimizeList(s.Body.Stmts)
			if wrapped := f.tryLift(s.Body, &s.Var, s, s.P); wrapped != nil {
				b.Stmts[i] = wrapped
			}
		case *ast.SyncBlock:
			f.transformBlock(s.Body)
			s.Body.Stmts = f.optimizeList(s.Body.Stmts)
		}
	}
}

// optimizeList expands eligible call statements and coalesces neighbouring
// regions.
func (f *frw) optimizeList(stmts []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, len(stmts))
	copy(out, stmts)
	for i, s := range out {
		if rep := f.tryExpandCall(s); rep != nil {
			out[i] = rep
		}
	}
	return f.mergeRegions(out)
}

// tryExpandCall wraps a statement-level call in a conditional region for
// the policies whose global expansion decision for the callee fired.
func (f *frw) tryExpandCall(s ast.Stmt) ast.Stmt {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	target, ok := f.info.CallTarget[call]
	if !ok {
		return nil
	}
	full := target.FullName()
	decision := f.decideExpansion(full)
	// Group policies by lock target so one region serves both when they
	// agree (the common case); nest otherwise.
	byLock := map[string][]Policy{}
	lockOf := map[string]*lockTarget{}
	for _, p := range []Policy{Bounded, Aggressive} {
		lt := decision.lock[p]
		if lt == nil {
			continue
		}
		key := fmt.Sprintf("%v:%d", lt.onThis, lt.param)
		byLock[key] = append(byLock[key], p)
		lockOf[key] = lt
	}
	if len(byLock) == 0 {
		return nil
	}
	wrapped := s
	keys := make([]string, 0, len(byLock))
	for k := range byLock {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		lt := lockOf[key]
		var lockExpr ast.Expr
		if lt.onThis {
			lockExpr = ast.CloneExpr(call.Recv)
		} else {
			lockExpr = ast.CloneExpr(call.Args[lt.param])
		}
		wrapped = &ast.SyncBlock{
			P:    s.Pos(),
			Lock: lockExpr,
			Body: &ast.Block{P: s.Pos(), Stmts: []ast.Stmt{wrapped}},
			Site: f.newSite(byLock[key]...),
		}
	}
	return wrapped
}

// decideExpansion makes the global, all-call-sites decision for a callee:
// for each policy, every statement-level call site must have a pure lock
// expression, the callee must be classified for that policy, and Bounded
// additionally requires the enlarged region to reach no call-graph cycle.
// On success the callee's interior sites are disabled for those policies
// exactly once.
func (f *frw) decideExpansion(full string) *expandDecision {
	if d, ok := f.expandMemo[full]; ok {
		return d
	}
	d := &expandDecision{lock: map[Policy]*lockTarget{}}
	f.expandMemo[full] = d
	fi := f.info.FuncByFullName(full)
	if fi == nil || !f.syncSet[full] {
		return d
	}
	cls := f.classify(full)
	var calleeCallees []string
	callgraph.WalkCalls(fi.Decl.Body, func(c *ast.CallExpr) {
		if t, ok := f.info.CallTarget[c]; ok {
			calleeCallees = append(calleeCallees, t.FullName())
		}
	})
	for _, p := range []Policy{Bounded, Aggressive} {
		lt := cls.lock[p]
		if lt == nil {
			continue
		}
		ok := len(f.callSites[full]) > 0
		for _, call := range f.callSites[full] {
			var lockExpr ast.Expr
			if lt.onThis {
				lockExpr = call.Recv
			} else if lt.param < len(call.Args) {
				lockExpr = call.Args[lt.param]
			}
			if lockExpr == nil || !pureExpr(lockExpr) {
				ok = false
			}
		}
		if p == Bounded && f.cg.CanReachCycle(calleeCallees...) {
			ok = false
		}
		if ok {
			d.lock[p] = lt
		}
	}
	var disable []Policy
	//dfvet:allow detorder disableIn only deletes per-policy site entries; the result is order-insensitive
	for p := range d.lock {
		disable = append(disable, p)
	}
	if len(disable) > 0 {
		f.disableIn(fi.Decl.Body, disable)
		// Classification and sync-freedom change; clear the memos.
		f.classMemo = map[string]*flagClass{}
		f.syncFree = map[string]int{}
	}
	return d
}

// classify determines, per policy, whether all of a function's active
// regions are on one nameable lock (receiver or parameter) with
// synchronization-free code elsewhere.
func (f *frw) classify(full string) *flagClass {
	if c, ok := f.classMemo[full]; ok {
		return c
	}
	c := &flagClass{lock: map[Policy]*lockTarget{}}
	f.classMemo[full] = c
	fi := f.info.FuncByFullName(full)
	if fi == nil {
		return c
	}
	for _, p := range []Policy{Bounded, Aggressive} {
		var locks []*ast.SyncBlock
		for _, sb := range collectSyncLocks(fi.Decl.Body) {
			if f.active(sb, p) {
				locks = append(locks, sb)
			}
		}
		if len(locks) == 0 {
			continue
		}
		canon := ast.ExprString(locks[0].Lock)
		same := true
		for _, l := range locks[1:] {
			if ast.ExprString(l.Lock) != canon {
				same = false
			}
		}
		if !same {
			continue
		}
		var lt *lockTarget
		switch lk := locks[0].Lock.(type) {
		case *ast.ThisExpr:
			if fi.Class != nil {
				lt = &lockTarget{onThis: true}
			}
		case *ast.Ident:
			for i, prm := range fi.Decl.Params {
				if prm.Name == lk.Name {
					lt = &lockTarget{param: i}
				}
			}
		}
		if lt == nil {
			continue
		}
		vars := map[string]bool{}
		collectIdents(locks[0].Lock, vars)
		if assignsAny(fi.Decl.Body, vars) {
			continue
		}
		if !f.callsSyncFreeOutsideActive(fi.Decl.Body, p) {
			continue
		}
		c.lock[p] = lt
	}
	return c
}

// mergeRegions coalesces neighbouring same-lock regions. Runs are detected
// on the Aggressive view (Aggressive always coalesces); Bounded joins when
// the enlarged region reaches no cycle.
func (f *frw) mergeRegions(stmts []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	i := 0
	for i < len(stmts) {
		sb, ok := stmts[i].(*ast.SyncBlock)
		if !ok || !pureExpr(sb.Lock) || !f.active(sb, Aggressive) {
			out = append(out, stmts[i])
			i++
			continue
		}
		lockCanon := ast.ExprString(sb.Lock)
		span := []ast.Stmt{stmts[i]}
		j := i + 1
		for j < len(stmts) {
			k := j
			var absorbed []ast.Stmt
			okRun := true
			for k < len(stmts) {
				nxt, isSync := stmts[k].(*ast.SyncBlock)
				if isSync && f.active(nxt, Aggressive) {
					if ast.ExprString(nxt.Lock) == lockCanon {
						break
					}
					okRun = false
					break
				}
				if !f.absorbableFor(stmts[k], sb.Lock, Aggressive) {
					okRun = false
					break
				}
				absorbed = append(absorbed, stmts[k])
				k++
			}
			if !okRun || k >= len(stmts) {
				break
			}
			span = append(span, absorbed...)
			span = append(span, stmts[k])
			j = k + 1
		}
		if len(span) == 1 {
			out = append(out, sb)
			i = j
			continue
		}
		enabled := []Policy{Aggressive}
		if !f.spanReachesCycle(span) && f.spanAbsorbableFor(span, sb.Lock, Bounded) {
			enabled = append(enabled, Bounded)
		}
		region := &ast.SyncBlock{
			P:    sb.P,
			Lock: ast.CloneExpr(sb.Lock),
			Body: &ast.Block{P: sb.P, Stmts: span},
			Site: f.newSite(enabled...),
		}
		for _, st := range span {
			f.disableIn(st, enabled)
		}
		out = append(out, region)
		i = j
	}
	return out
}

// spanAbsorbableFor checks the non-region statements of a span for a
// policy (region statements are handled by flag disabling).
func (f *frw) spanAbsorbableFor(span []ast.Stmt, lock ast.Expr, p Policy) bool {
	for _, st := range span {
		if sb, ok := st.(*ast.SyncBlock); ok && ast.ExprString(sb.Lock) == ast.ExprString(lock) {
			continue
		}
		if !f.absorbableFor(st, lock, p) {
			return false
		}
	}
	return true
}

func (f *frw) spanReachesCycle(span []ast.Stmt) bool {
	var targets []string
	for _, s := range span {
		callgraph.WalkCalls(s, func(c *ast.CallExpr) {
			if t, ok := f.info.CallTarget[c]; ok {
				targets = append(targets, t.FullName())
			}
		})
	}
	return f.cg.CanReachCycle(targets...)
}

// tryLift lifts a loop's synchronization for the policies that allow it,
// returning the wrapping region (or nil).
func (f *frw) tryLift(body *ast.Block, loopVar *string, loop ast.Stmt, pos interface{ String() string }) ast.Stmt {
	_ = pos
	var wrapped ast.Stmt
	for _, p := range []Policy{Aggressive, Bounded} {
		var locks []*ast.SyncBlock
		for _, sb := range collectSyncLocks(body) {
			if f.active(sb, p) {
				locks = append(locks, sb)
			}
		}
		if len(locks) == 0 {
			continue
		}
		canon := ast.ExprString(locks[0].Lock)
		same := true
		for _, l := range locks[1:] {
			if ast.ExprString(l.Lock) != canon {
				same = false
			}
		}
		if !same || !pureExpr(locks[0].Lock) {
			continue
		}
		vars := map[string]bool{}
		collectIdents(locks[0].Lock, vars)
		if loopVar != nil && vars[*loopVar] {
			continue
		}
		if assignsAny(body, vars) {
			continue
		}
		if !f.callsSyncFreeOutsideActive(body, p) {
			continue
		}
		if p == Bounded && f.spanReachesCycle([]ast.Stmt{loop}) {
			continue
		}
		f.disableIn(body, []Policy{p})
		inner := loop
		if wrapped != nil {
			inner = wrapped
		}
		wrapped = &ast.SyncBlock{
			P:    loop.Pos(),
			Lock: ast.CloneExpr(locks[0].Lock),
			Body: &ast.Block{P: loop.Pos(), Stmts: []ast.Stmt{inner}},
			Site: f.newSite(p),
		}
	}
	return wrapped
}

// absorbableFor reports whether a statement can live inside a p-enabled
// region on lock: it must contain no p-active synchronization (directly or
// through calls) and must not assign the lock's variables.
func (f *frw) absorbableFor(s ast.Stmt, lock ast.Expr, p Policy) bool {
	if !f.stmtSyncFreeFor(s, p) {
		return false
	}
	vars := map[string]bool{}
	collectIdents(lock, vars)
	bad := false
	var walk func(st ast.Stmt)
	walk = func(st ast.Stmt) {
		switch st := st.(type) {
		case *ast.Block:
			for _, x := range st.Stmts {
				walk(x)
			}
		case *ast.AssignStmt:
			if id, ok := st.LHS.(*ast.Ident); ok && vars[id.Name] {
				bad = true
			}
		case *ast.LetStmt:
			if vars[st.Name] {
				bad = true
			}
		case *ast.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *ast.WhileStmt:
			walk(st.Body)
		case *ast.ForStmt:
			if vars[st.Var] {
				bad = true
			}
			walk(st.Body)
		case *ast.SyncBlock:
			walk(st.Body)
		}
	}
	walk(s)
	return !bad
}

// stmtSyncFreeFor reports whether s contains no p-active regions and all
// its calls target p-synchronization-free functions.
func (f *frw) stmtSyncFreeFor(s ast.Stmt, p Policy) bool {
	free := true
	var checkExpr func(e ast.Expr)
	checkExpr = func(e ast.Expr) {
		callgraph.WalkExprCalls(e, func(c *ast.CallExpr) {
			if t, ok := f.info.CallTarget[c]; ok && !f.funcSyncFreeFor(t.FullName(), p) {
				free = false
			}
		})
	}
	var walk func(st ast.Stmt)
	walk = func(st ast.Stmt) {
		switch st := st.(type) {
		case *ast.Block:
			for _, x := range st.Stmts {
				walk(x)
			}
		case *ast.SyncBlock:
			if f.active(st, p) {
				free = false
			}
			walk(st.Body)
		case *ast.LetStmt:
			checkExpr(st.Init)
		case *ast.AssignStmt:
			checkExpr(st.LHS)
			checkExpr(st.RHS)
		case *ast.ExprStmt:
			checkExpr(st.X)
		case *ast.IfStmt:
			checkExpr(st.Cond)
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *ast.WhileStmt:
			checkExpr(st.Cond)
			walk(st.Body)
		case *ast.ForStmt:
			checkExpr(st.Lo)
			checkExpr(st.Hi)
			walk(st.Body)
		case *ast.ReturnStmt:
			checkExpr(st.X)
		case *ast.PrintStmt:
			checkExpr(st.X)
		}
	}
	walk(s)
	return free
}

func (f *frw) funcSyncFreeFor(full string, p Policy) bool {
	key := full + "\x00" + string(p)
	switch f.syncFree[key] {
	case 1:
		return true
	case 2:
		return false
	}
	f.syncFree[key] = 1 // optimistic for recursion
	fi := f.info.FuncByFullName(full)
	free := true
	if fi != nil {
		free = f.stmtSyncFreeFor(fi.Decl.Body, p)
	}
	if free {
		f.syncFree[key] = 1
	} else {
		f.syncFree[key] = 2
	}
	return free
}

// callsSyncFreeOutsideActive checks that code outside p-active regions
// performs no p-active synchronization through calls.
func (f *frw) callsSyncFreeOutsideActive(b *ast.Block, p Policy) bool {
	ok := true
	checkExpr := func(e ast.Expr) {
		callgraph.WalkExprCalls(e, func(c *ast.CallExpr) {
			if t, found := f.info.CallTarget[c]; found && !f.funcSyncFreeFor(t.FullName(), p) {
				ok = false
			}
		})
	}
	var walk func(s ast.Stmt, inRegion bool)
	walk = func(s ast.Stmt, inRegion bool) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st, inRegion)
			}
		case *ast.SyncBlock:
			walk(s.Body, inRegion || f.active(s, p))
		case *ast.IfStmt:
			if !inRegion {
				checkExpr(s.Cond)
			}
			walk(s.Then, inRegion)
			if s.Else != nil {
				walk(s.Else, inRegion)
			}
		case *ast.WhileStmt:
			if !inRegion {
				checkExpr(s.Cond)
			}
			walk(s.Body, inRegion)
		case *ast.ForStmt:
			walk(s.Body, inRegion)
		case *ast.LetStmt:
			if !inRegion {
				checkExpr(s.Init)
			}
		case *ast.AssignStmt:
			if !inRegion {
				checkExpr(s.LHS)
				checkExpr(s.RHS)
			}
		case *ast.ExprStmt:
			if !inRegion {
				checkExpr(s.X)
			}
		case *ast.ReturnStmt:
			if !inRegion {
				checkExpr(s.X)
			}
		case *ast.PrintStmt:
			if !inRegion {
				checkExpr(s.X)
			}
		}
	}
	walk(b, false)
	return ok
}

// prune replaces regions no policy enables with their bodies.
func (f *frw) prune(b *ast.Block) {
	for i, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.SyncBlock:
			f.prune(s.Body)
			if s.Site > 0 && len(f.sites[s.Site-1]) == 0 {
				b.Stmts[i] = s.Body
			}
		case *ast.Block:
			f.prune(s)
		case *ast.IfStmt:
			f.prune(s.Then)
			if s.Else != nil {
				f.prune(s.Else)
			}
		case *ast.WhileStmt:
			f.prune(s.Body)
		case *ast.ForStmt:
			f.prune(s.Body)
		}
	}
}
