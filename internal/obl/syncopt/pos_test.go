package syncopt_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/obl/ast"
	"repro/internal/obl/callgraph"
	"repro/internal/obl/commute"
	"repro/internal/obl/parser"
	"repro/internal/obl/sema"
	"repro/internal/obl/syncopt"
)

// TestRegionsCarryPositions checks that every critical region the optimizer
// synthesizes — default placement, merged, lifted, expanded, and the
// conditional sites of the flag-dispatch version — carries a real source
// position, so diagnostics anchored to regions never print 0:0.
func TestRegionsCarryPositions(t *testing.T) {
	for _, name := range apps.Names {
		src, err := apps.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, policy := range syncopt.AllPolicies {
			prog, info, cg := buildMarked(t, src)
			if err := syncopt.Apply(prog, info, cg, policy); err != nil {
				t.Fatal(err)
			}
			checkRegionPositions(t, name+"/"+string(policy), prog)
		}
		prog, info, cg := buildMarked(t, src)
		if _, err := syncopt.ApplyFlagged(prog, info, cg); err != nil {
			t.Fatal(err)
		}
		checkRegionPositions(t, name+"/flagged", prog)
	}
}

func buildMarked(t *testing.T, src string) (*ast.Program, *sema.Info, *callgraph.Graph) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	cg := callgraph.Build(info)
	commute.New(info, cg).AnalyzeLoops()
	return prog, info, cg
}

func checkRegionPositions(t *testing.T, label string, prog *ast.Program) {
	t.Helper()
	n := 0
	forEachRegion(prog, func(sb *ast.SyncBlock) {
		n++
		if sb.P.Line <= 0 {
			t.Errorf("%s: region on %s has zero position", label, ast.ExprString(sb.Lock))
		}
		if sb.Body.P.Line <= 0 {
			t.Errorf("%s: region body on %s has zero position", label, ast.ExprString(sb.Lock))
		}
	})
	if n == 0 {
		t.Errorf("%s: no regions generated", label)
	}
}

func forEachRegion(p *ast.Program, f func(*ast.SyncBlock)) {
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.IfStmt:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.WhileStmt:
			walk(s.Body)
		case *ast.ForStmt:
			walk(s.Body)
		case *ast.SyncBlock:
			f(s)
			walk(s.Body)
		}
	}
	for _, fn := range p.Funcs {
		walk(fn.Body)
	}
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			walk(m.Body)
		}
	}
}
