// Package syncopt implements the synchronization optimizations of §3: the
// default placement of acquire/release constructs around object updates
// (§2), the lock elimination transformations (critical-region coalescing
// and interprocedural lock lifting), and the three policies that govern
// their use:
//
//   - Original: never apply the transformations; every update executes in
//     its own critical region.
//   - Bounded: apply a transformation only if the new critical region will
//     contain no cycles in the call graph, bounding the dynamic size of the
//     region and hence the severity of any false exclusion.
//   - Aggressive: always apply the transformations.
//
// The package rewrites a checked program clone in place; the caller re-runs
// sema on the result before lowering. Interprocedural lifting follows the
// paper's Figure 1 → Figure 2 shape: when a callee's body is one critical
// region on a lock the caller can name (its receiver or an argument), the
// compiler generates an unsynchronized variant of the callee and moves the
// acquire and release to the call site, where they can coalesce with
// neighbouring regions or lift out of loops.
package syncopt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obl/ast"
	"repro/internal/obl/callgraph"
	"repro/internal/obl/sema"
)

// Policy selects a synchronization optimization policy.
type Policy string

// The paper's three policies.
const (
	Original   Policy = "original"
	Bounded    Policy = "bounded"
	Aggressive Policy = "aggressive"
)

// AllPolicies lists the policies in the paper's order.
var AllPolicies = []Policy{Original, Bounded, Aggressive}

// UnsyncSuffix is appended to generated unsynchronized variants.
const UnsyncSuffix = "__unsync"

// Params parameterizes the synchronization transformations. The paper's
// three policies are presets over this space (ParamsFor); the policy
// generator (internal/obl/polgen) explores the rest of it.
type Params struct {
	// Transform enables the lock elimination transformations at all.
	// False reproduces the Original policy: every update in its own
	// critical region.
	Transform bool
	// BoundedCycles declines any transformation whose resulting region
	// would contain a call-graph cycle (the Bounded policy's guard).
	BoundedCycles bool
	// MaxCoalesce bounds how many critical regions may be coalesced into
	// one enlarged region (the lock-coarsening level). 0 means unlimited;
	// 1 disables coalescing entirely.
	MaxCoalesce int
	// Lift enables interprocedural and loop lock lifting.
	Lift bool
	// ExpandCalls enables expanding calls to fully synchronized callees
	// into explicit regions around unsynchronized variants, the
	// precondition for cross-call coalescing.
	ExpandCalls bool
}

// ParamsFor returns the parameter preset that reproduces a paper policy.
// ApplyParams with these presets is behaviourally identical to Apply with
// the corresponding policy.
func ParamsFor(p Policy) Params {
	switch p {
	case Bounded:
		return Params{Transform: true, BoundedCycles: true, Lift: true, ExpandCalls: true}
	case Aggressive:
		return Params{Transform: true, Lift: true, ExpandCalls: true}
	default:
		return Params{}
	}
}

// lockTarget classifies the lock of a fully synchronized callee.
type lockTarget struct {
	onThis bool
	param  int // parameter index when !onThis
}

// classification of a function whose body is, in effect, one critical
// region: callers may take over its synchronization.
type classification struct {
	lock       lockTarget
	unsyncName string // bare name of the unsynchronized variant
	// regionCallees are the functions called anywhere in the body; the
	// Bounded policy requires them to be cycle-free before enlarging a
	// region around this call.
	regionCallees []string
}

type rewriter struct {
	prog   *ast.Program
	info   *sema.Info
	cg     *callgraph.Graph
	params Params

	syncSet map[string]bool
	class   map[string]*classification
	visited map[string]bool
	inProg  map[string]bool

	// localTargets resolves calls created by the rewriter itself.
	localTargets map[*ast.CallExpr]string
	// syncFreeMemo caches transitive sync-freedom by function name.
	syncFreeMemo map[string]int // 0 unknown, 1 free, 2 not free

	// newFuncs and newMethods collect generated unsync variants.
	newFuncs   []*ast.FuncDecl
	newMethods map[string][]*ast.FuncDecl // class -> methods

	errs []string
}

// Apply rewrites prog in place for the given policy. The program must have
// parallel loops marked (commute.AnalyzeLoops) and be freshly checked; info
// and cg must describe prog itself.
func Apply(prog *ast.Program, info *sema.Info, cg *callgraph.Graph, policy Policy) error {
	return ApplyParams(prog, info, cg, ParamsFor(policy))
}

// ApplyParams rewrites prog in place under an arbitrary parameter point.
// Apply is ApplyParams over the ParamsFor presets.
func ApplyParams(prog *ast.Program, info *sema.Info, cg *callgraph.Graph, params Params) error {
	rw := &rewriter{
		prog: prog, info: info, cg: cg, params: params,
		syncSet:      map[string]bool{},
		class:        map[string]*classification{},
		visited:      map[string]bool{},
		inProg:       map[string]bool{},
		localTargets: map[*ast.CallExpr]string{},
		syncFreeMemo: map[string]int{},
		newMethods:   map[string][]*ast.FuncDecl{},
	}
	rw.computeSyncSet()
	// Default placement everywhere in the sync set and in parallel loop
	// bodies (§2).
	for _, fi := range info.AllFuncs() {
		if rw.syncSet[fi.FullName()] {
			rw.insertDefaultPlacement(fi.Decl.Body)
		}
	}
	rw.forEachParallelLoop(func(fn *ast.FuncDecl, loop *ast.ForStmt) {
		rw.insertDefaultPlacement(loop.Body)
	})
	if params.Transform {
		// Transform callees bottom-up, then the parallel loop bodies.
		names := make([]string, 0, len(rw.syncSet))
		for n := range rw.syncSet {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rw.transformFunc(n)
		}
		rw.forEachParallelLoop(func(fn *ast.FuncDecl, loop *ast.ForStmt) {
			rw.transformBlock(loop.Body)
			loop.Body.Stmts = rw.optimizeList(loop.Body.Stmts)
		})
	}
	// Install generated variants.
	prog.Funcs = append(prog.Funcs, rw.newFuncs...)
	for _, c := range prog.Classes {
		if ms := rw.newMethods[c.Name]; ms != nil {
			c.Methods = append(c.Methods, ms...)
		}
	}
	if len(rw.errs) > 0 {
		return fmt.Errorf("syncopt: %s", strings.Join(rw.errs, "; "))
	}
	return nil
}

func (rw *rewriter) errorf(format string, args ...any) {
	rw.errs = append(rw.errs, fmt.Sprintf(format, args...))
}

func (rw *rewriter) forEachParallelLoop(f func(fn *ast.FuncDecl, loop *ast.ForStmt)) {
	for _, fn := range rw.prog.Funcs {
		fn := fn
		var walk func(s ast.Stmt)
		walk = func(s ast.Stmt) {
			switch s := s.(type) {
			case *ast.Block:
				for _, st := range s.Stmts {
					walk(st)
				}
			case *ast.IfStmt:
				walk(s.Then)
				if s.Else != nil {
					walk(s.Else)
				}
			case *ast.WhileStmt:
				walk(s.Body)
			case *ast.ForStmt:
				if s.Parallel {
					f(fn, s)
					return
				}
				walk(s.Body)
			case *ast.SyncBlock:
				walk(s.Body)
			}
		}
		walk(fn.Body)
	}
}

// computeSyncSet finds every function that can execute inside a parallel
// section: the operations invoked from parallel loop bodies, transitively.
func (rw *rewriter) computeSyncSet() {
	var roots []string
	rw.forEachParallelLoop(func(fn *ast.FuncDecl, loop *ast.ForStmt) {
		callgraph.WalkCalls(loop.Body, func(c *ast.CallExpr) {
			if t, ok := rw.info.CallTarget[c]; ok {
				roots = append(roots, t.FullName())
			}
		})
	})
	for _, n := range rw.cg.Reachable(roots...) {
		rw.syncSet[n] = true
	}
}

// insertDefaultPlacement wraps every object update in its own critical
// region on the updated object's lock.
func (rw *rewriter) insertDefaultPlacement(b *ast.Block) {
	for i, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if lhs, ok := s.LHS.(*ast.FieldExpr); ok {
				if !pureExpr(lhs.X) {
					rw.errorf("impure update target %q cannot be synchronized", ast.ExprString(lhs.X))
					continue
				}
				b.Stmts[i] = &ast.SyncBlock{
					P:    s.P,
					Lock: ast.CloneExpr(lhs.X),
					Body: &ast.Block{P: s.P, Stmts: []ast.Stmt{s}},
				}
			}
		case *ast.Block:
			rw.insertDefaultPlacement(s)
		case *ast.IfStmt:
			rw.insertDefaultPlacement(s.Then)
			if s.Else != nil {
				rw.insertDefaultPlacement(s.Else)
			}
		case *ast.WhileStmt:
			rw.insertDefaultPlacement(s.Body)
		case *ast.ForStmt:
			rw.insertDefaultPlacement(s.Body)
		case *ast.SyncBlock:
			rw.insertDefaultPlacement(s.Body)
		}
	}
}

// pureExpr reports whether e has no side effects and is stable under
// re-evaluation (identifiers, this, field and index chains).
func pureExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.ThisExpr, *ast.IntLit, *ast.FloatLit, *ast.BoolLit:
		return true
	case *ast.FieldExpr:
		return pureExpr(e.X)
	case *ast.IndexExpr:
		return pureExpr(e.X) && pureExpr(e.Index)
	case *ast.BinExpr:
		return pureExpr(e.L) && pureExpr(e.R)
	case *ast.UnExpr:
		return pureExpr(e.X)
	default:
		return false
	}
}

// transformFunc rewrites one sync-set function bottom-up and classifies it.
func (rw *rewriter) transformFunc(full string) {
	if rw.visited[full] || rw.inProg[full] {
		return
	}
	fi := rw.info.FuncByFullName(full)
	if fi == nil {
		return
	}
	rw.inProg[full] = true
	for _, callee := range rw.cg.Succs(full) {
		if rw.syncSet[callee] {
			rw.transformFunc(callee)
		}
	}
	rw.transformBlock(fi.Decl.Body)
	fi.Decl.Body.Stmts = rw.optimizeList(fi.Decl.Body.Stmts)
	if rw.params.ExpandCalls {
		rw.classify(fi)
	}
	delete(rw.inProg, full)
	rw.visited[full] = true
}

// transformBlock recursively optimizes nested statement structures.
func (rw *rewriter) transformBlock(b *ast.Block) {
	for i, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.Block:
			rw.transformBlock(s)
			s.Stmts = rw.optimizeList(s.Stmts)
		case *ast.IfStmt:
			rw.transformBlock(s.Then)
			s.Then.Stmts = rw.optimizeList(s.Then.Stmts)
			if s.Else != nil {
				rw.transformBlock(s.Else)
				s.Else.Stmts = rw.optimizeList(s.Else.Stmts)
			}
		case *ast.WhileStmt:
			rw.transformBlock(s.Body)
			s.Body.Stmts = rw.optimizeList(s.Body.Stmts)
			if lifted := rw.tryLift(s.Body, nil); lifted != nil {
				b.Stmts[i] = &ast.SyncBlock{P: s.P, Lock: lifted, Body: &ast.Block{P: s.P, Stmts: []ast.Stmt{s}}}
			}
		case *ast.ForStmt:
			if s.Parallel {
				continue // handled separately; never lift across it
			}
			rw.transformBlock(s.Body)
			s.Body.Stmts = rw.optimizeList(s.Body.Stmts)
			if lifted := rw.tryLift(s.Body, &s.Var); lifted != nil {
				b.Stmts[i] = &ast.SyncBlock{P: s.P, Lock: lifted, Body: &ast.Block{P: s.P, Stmts: []ast.Stmt{s}}}
			}
		case *ast.SyncBlock:
			rw.transformBlock(s.Body)
			s.Body.Stmts = rw.optimizeList(s.Body.Stmts)
		}
	}
}

// optimizeList expands calls to fully synchronized callees into explicit
// regions and coalesces neighbouring regions on the same lock.
func (rw *rewriter) optimizeList(stmts []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, len(stmts))
	copy(out, stmts)
	for i, s := range out {
		if rep := rw.tryExpandCall(s); rep != nil {
			out[i] = rep
		}
	}
	return rw.mergeRegions(out)
}

// tryExpandCall turns a statement-level call to a fully synchronized
// callee into a region around a call to the unsynchronized variant.
func (rw *rewriter) tryExpandCall(s ast.Stmt) ast.Stmt {
	if !rw.params.ExpandCalls {
		return nil
	}
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	target, ok := rw.info.CallTarget[call]
	if !ok {
		return nil
	}
	cls := rw.class[target.FullName()]
	if cls == nil {
		return nil
	}
	var lockExpr ast.Expr
	if cls.lock.onThis {
		if call.Recv == nil || !pureExpr(call.Recv) {
			return nil
		}
		lockExpr = ast.CloneExpr(call.Recv)
	} else {
		if cls.lock.param >= len(call.Args) || !pureExpr(call.Args[cls.lock.param]) {
			return nil
		}
		lockExpr = ast.CloneExpr(call.Args[cls.lock.param])
	}
	if rw.params.BoundedCycles && rw.cg.CanReachCycle(cls.regionCallees...) {
		// The new region would contain a call-graph cycle (§3).
		return nil
	}
	unsyncCall := &ast.CallExpr{P: call.P, Recv: ast.CloneExpr(call.Recv), Name: cls.unsyncName}
	for _, a := range call.Args {
		unsyncCall.Args = append(unsyncCall.Args, ast.CloneExpr(a))
	}
	rw.localTargets[unsyncCall] = unsyncFullName(target)
	return &ast.SyncBlock{
		P:    s.Pos(),
		Lock: lockExpr,
		Body: &ast.Block{P: s.Pos(), Stmts: []ast.Stmt{&ast.ExprStmt{P: s.Pos(), X: unsyncCall}}},
	}
}

func unsyncFullName(fi *sema.FuncInfo) string {
	if fi.Class != nil {
		return fi.Class.Name + "::" + fi.Decl.Name + UnsyncSuffix
	}
	return fi.Decl.Name + UnsyncSuffix
}

// mergeRegions coalesces SyncBlocks on the same lock within a statement
// list, absorbing intervening synchronization-free statements into the
// enlarged region (this is what eliminates the intermediate release and
// acquire constructs, §3).
func (rw *rewriter) mergeRegions(stmts []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	i := 0
	for i < len(stmts) {
		sb, ok := stmts[i].(*ast.SyncBlock)
		if !ok || !pureExpr(sb.Lock) {
			out = append(out, stmts[i])
			i++
			continue
		}
		lockCanon := ast.ExprString(sb.Lock)
		region := []ast.Stmt{}
		region = append(region, sb.Body.Stmts...)
		merged := 1 // regions coalesced into the current enlarged region
		j := i + 1
		for j < len(stmts) {
			if rw.params.MaxCoalesce > 0 && merged >= rw.params.MaxCoalesce {
				break
			}
			// Scan ahead for the next region on the same lock, over
			// absorbable statements.
			k := j
			var absorbed []ast.Stmt
			okRun := true
			for k < len(stmts) {
				nxt, isSync := stmts[k].(*ast.SyncBlock)
				if isSync {
					if ast.ExprString(nxt.Lock) == lockCanon {
						break
					}
					okRun = false
					break
				}
				if !rw.absorbable(stmts[k], sb.Lock) {
					okRun = false
					break
				}
				absorbed = append(absorbed, stmts[k])
				k++
			}
			if !okRun || k >= len(stmts) {
				break
			}
			next := stmts[k].(*ast.SyncBlock)
			candidate := append(append(append([]ast.Stmt{}, region...), absorbed...), next.Body.Stmts...)
			if rw.params.BoundedCycles && rw.regionReachesCycle(candidate) {
				break
			}
			region = candidate
			merged++
			j = k + 1
		}
		if j == i+1 {
			out = append(out, sb)
		} else {
			out = append(out, &ast.SyncBlock{P: sb.P, Lock: sb.Lock, Body: &ast.Block{P: sb.P, Stmts: region}})
		}
		i = j
	}
	return out
}

// absorbable reports whether a statement may be pulled inside a region on
// lock: it must be transitively synchronization-free and must not assign
// any variable the lock expression mentions.
func (rw *rewriter) absorbable(s ast.Stmt, lock ast.Expr) bool {
	if !rw.stmtSyncFree(s) {
		return false
	}
	vars := map[string]bool{}
	collectIdents(lock, vars)
	bad := false
	var walk func(st ast.Stmt)
	walk = func(st ast.Stmt) {
		switch st := st.(type) {
		case *ast.Block:
			for _, x := range st.Stmts {
				walk(x)
			}
		case *ast.AssignStmt:
			if id, ok := st.LHS.(*ast.Ident); ok && vars[id.Name] {
				bad = true
			}
		case *ast.LetStmt:
			if vars[st.Name] {
				bad = true
			}
		case *ast.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *ast.WhileStmt:
			walk(st.Body)
		case *ast.ForStmt:
			if vars[st.Var] {
				bad = true
			}
			walk(st.Body)
		case *ast.SyncBlock:
			walk(st.Body)
		}
	}
	walk(s)
	return !bad
}

func collectIdents(e ast.Expr, out map[string]bool) {
	switch e := e.(type) {
	case *ast.Ident:
		out[e.Name] = true
	case *ast.ThisExpr:
		out["this"] = true
	case *ast.FieldExpr:
		collectIdents(e.X, out)
	case *ast.IndexExpr:
		collectIdents(e.X, out)
		collectIdents(e.Index, out)
	case *ast.BinExpr:
		collectIdents(e.L, out)
		collectIdents(e.R, out)
	case *ast.UnExpr:
		collectIdents(e.X, out)
	}
}

// tryLift checks whether a loop body's synchronization can move out of the
// loop: every SyncBlock in the body must be on the same pure lock whose
// variables the loop does not assign (and which is not the loop variable).
// On success it strips the inner regions and returns the lock expression.
func (rw *rewriter) tryLift(body *ast.Block, loopVar *string) ast.Expr {
	if !rw.params.Lift {
		return nil
	}
	locks := collectSyncLocks(body)
	if len(locks) == 0 {
		return nil
	}
	canon := ast.ExprString(locks[0].Lock)
	for _, l := range locks[1:] {
		if ast.ExprString(l.Lock) != canon {
			return nil
		}
	}
	if !pureExpr(locks[0].Lock) {
		return nil
	}
	vars := map[string]bool{}
	collectIdents(locks[0].Lock, vars)
	if loopVar != nil && vars[*loopVar] {
		return nil
	}
	if assignsAny(body, vars) {
		return nil
	}
	// Everything outside the regions gets absorbed; it must be
	// synchronization-free once the inner regions are stripped, which
	// collectSyncLocks already guarantees structurally — but calls to
	// functions with residual synchronization must block the lift.
	if !rw.allCallsSyncFreeOutsideRegions(body) {
		return nil
	}
	if rw.params.BoundedCycles && rw.regionReachesCycle(body.Stmts) {
		return nil
	}
	stripSyncBlocks(body)
	return ast.CloneExpr(locks[0].Lock)
}

func collectSyncLocks(b *ast.Block) []*ast.SyncBlock {
	var out []*ast.SyncBlock
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.SyncBlock:
			out = append(out, s)
			walk(s.Body)
		case *ast.IfStmt:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.WhileStmt:
			walk(s.Body)
		case *ast.ForStmt:
			walk(s.Body)
		}
	}
	walk(b)
	return out
}

func assignsAny(b *ast.Block, vars map[string]bool) bool {
	bad := false
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.AssignStmt:
			if id, ok := s.LHS.(*ast.Ident); ok && vars[id.Name] {
				bad = true
			}
		case *ast.LetStmt:
			if vars[s.Name] {
				bad = true
			}
		case *ast.IfStmt:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.WhileStmt:
			walk(s.Body)
		case *ast.ForStmt:
			if vars[s.Var] {
				bad = true
			}
			walk(s.Body)
		case *ast.SyncBlock:
			walk(s.Body)
		}
	}
	walk(b)
	return bad
}

// stripSyncBlocks replaces every SyncBlock in the tree with its body.
func stripSyncBlocks(b *ast.Block) {
	for i, s := range b.Stmts {
		switch s := s.(type) {
		case *ast.SyncBlock:
			stripSyncBlocks(s.Body)
			b.Stmts[i] = s.Body
		case *ast.Block:
			stripSyncBlocks(s)
		case *ast.IfStmt:
			stripSyncBlocks(s.Then)
			if s.Else != nil {
				stripSyncBlocks(s.Else)
			}
		case *ast.WhileStmt:
			stripSyncBlocks(s.Body)
		case *ast.ForStmt:
			stripSyncBlocks(s.Body)
		}
	}
}

// allCallsSyncFreeOutsideRegions checks that calls outside SyncBlocks in
// the body target transitively synchronization-free functions, so that
// absorbing them into the lifted region introduces no nested locking.
func (rw *rewriter) allCallsSyncFreeOutsideRegions(b *ast.Block) bool {
	ok := true
	var walkStmt func(s ast.Stmt, inRegion bool)
	walkStmt = func(s ast.Stmt, inRegion bool) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walkStmt(st, inRegion)
			}
		case *ast.SyncBlock:
			walkStmt(s.Body, true)
		case *ast.IfStmt:
			if !inRegion && !rw.exprCallsSyncFree(s.Cond) {
				ok = false
			}
			walkStmt(s.Then, inRegion)
			if s.Else != nil {
				walkStmt(s.Else, inRegion)
			}
		case *ast.WhileStmt:
			if !inRegion && !rw.exprCallsSyncFree(s.Cond) {
				ok = false
			}
			walkStmt(s.Body, inRegion)
		case *ast.ForStmt:
			walkStmt(s.Body, inRegion)
		case *ast.LetStmt:
			if !inRegion && s.Init != nil && !rw.exprCallsSyncFree(s.Init) {
				ok = false
			}
		case *ast.AssignStmt:
			if !inRegion && (!rw.exprCallsSyncFree(s.LHS) || !rw.exprCallsSyncFree(s.RHS)) {
				ok = false
			}
		case *ast.ExprStmt:
			if !inRegion && !rw.exprCallsSyncFree(s.X) {
				ok = false
			}
		}
	}
	walkStmt(b, false)
	return ok
}

func (rw *rewriter) exprCallsSyncFree(e ast.Expr) bool {
	ok := true
	callgraph.WalkExprCalls(e, func(c *ast.CallExpr) {
		if name, resolved := rw.callTargetName(c); resolved && !rw.funcSyncFree(name) {
			ok = false
		}
	})
	return ok
}

// callTargetName resolves a call's target full name, consulting both the
// checked info and the rewriter's own created calls.
func (rw *rewriter) callTargetName(c *ast.CallExpr) (string, bool) {
	if t, ok := rw.info.CallTarget[c]; ok {
		return t.FullName(), true
	}
	if n, ok := rw.localTargets[c]; ok {
		return n, true
	}
	return "", false
}

// stmtSyncFree reports whether a statement contains no SyncBlocks and all
// its calls target transitively synchronization-free functions.
func (rw *rewriter) stmtSyncFree(s ast.Stmt) bool {
	free := true
	var walk func(st ast.Stmt)
	walk = func(st ast.Stmt) {
		switch st := st.(type) {
		case *ast.Block:
			for _, x := range st.Stmts {
				walk(x)
			}
		case *ast.SyncBlock:
			free = false
		case *ast.LetStmt:
			if st.Init != nil && !rw.exprCallsSyncFree(st.Init) {
				free = false
			}
		case *ast.AssignStmt:
			if !rw.exprCallsSyncFree(st.LHS) || !rw.exprCallsSyncFree(st.RHS) {
				free = false
			}
		case *ast.ExprStmt:
			if !rw.exprCallsSyncFree(st.X) {
				free = false
			}
		case *ast.IfStmt:
			if !rw.exprCallsSyncFree(st.Cond) {
				free = false
			}
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *ast.WhileStmt:
			if !rw.exprCallsSyncFree(st.Cond) {
				free = false
			}
			walk(st.Body)
		case *ast.ForStmt:
			if !rw.exprCallsSyncFree(st.Lo) || !rw.exprCallsSyncFree(st.Hi) {
				free = false
			}
			walk(st.Body)
		case *ast.ReturnStmt:
			if st.X != nil && !rw.exprCallsSyncFree(st.X) {
				free = false
			}
		case *ast.PrintStmt:
			if !rw.exprCallsSyncFree(st.X) {
				free = false
			}
		}
	}
	walk(s)
	return free
}

// funcSyncFree reports whether the named function's (current) body and its
// callees contain no synchronization.
func (rw *rewriter) funcSyncFree(full string) bool {
	switch rw.syncFreeMemo[full] {
	case 1:
		return true
	case 2:
		return false
	}
	rw.syncFreeMemo[full] = 1 // optimistic for recursion
	fi := rw.info.FuncByFullName(full)
	free := true
	if fi != nil {
		free = rw.stmtSyncFree(fi.Decl.Body)
	} else if !strings.HasSuffix(full, UnsyncSuffix) {
		free = false // unknown function: conservative
	}
	if free {
		rw.syncFreeMemo[full] = 1
	} else {
		rw.syncFreeMemo[full] = 2
	}
	return free
}

// regionReachesCycle reports whether any call inside the prospective
// region reaches a call-graph cycle; the Bounded policy then declines the
// transformation.
func (rw *rewriter) regionReachesCycle(stmts []ast.Stmt) bool {
	var targets []string
	for _, s := range stmts {
		callgraph.WalkCalls(s, func(c *ast.CallExpr) {
			if n, ok := rw.callTargetName(c); ok {
				targets = append(targets, strings.TrimSuffix(n, UnsyncSuffix))
			}
		})
	}
	return rw.cg.CanReachCycle(targets...)
}

// classify decides whether a function is fully synchronized on a single
// nameable lock (its receiver or a parameter) and, if so, generates its
// unsynchronized variant.
func (rw *rewriter) classify(fi *sema.FuncInfo) {
	body := fi.Decl.Body
	locks := collectSyncLocks(body)
	if len(locks) == 0 {
		return
	}
	canon := ast.ExprString(locks[0].Lock)
	for _, l := range locks[1:] {
		if ast.ExprString(l.Lock) != canon {
			return
		}
	}
	var lt lockTarget
	switch lk := locks[0].Lock.(type) {
	case *ast.ThisExpr:
		if fi.Class == nil {
			return
		}
		lt = lockTarget{onThis: true}
	case *ast.Ident:
		idx := -1
		for i, p := range fi.Decl.Params {
			if p.Name == lk.Name {
				idx = i
			}
		}
		if idx < 0 {
			return
		}
		lt = lockTarget{param: idx}
	default:
		return
	}
	// The lock variable must not be reassigned anywhere in the body.
	vars := map[string]bool{}
	collectIdents(locks[0].Lock, vars)
	if assignsAny(body, vars) {
		return
	}
	// Everything outside the regions must be synchronization-free so the
	// caller's region can cover the whole call.
	if !rw.allCallsSyncFreeOutsideRegions(body) {
		return
	}
	// Build the unsynchronized variant.
	unsync := ast.CloneFunc(fi.Decl)
	unsync.Name = fi.Decl.Name + UnsyncSuffix
	stripSyncBlocks(unsync.Body)
	if fi.Class != nil {
		rw.newMethods[fi.Class.Name] = append(rw.newMethods[fi.Class.Name], unsync)
	} else {
		rw.newFuncs = append(rw.newFuncs, unsync)
	}
	var callees []string
	callgraph.WalkCalls(body, func(c *ast.CallExpr) {
		if n, ok := rw.callTargetName(c); ok {
			callees = append(callees, strings.TrimSuffix(n, UnsyncSuffix))
		}
	})
	sort.Strings(callees)
	rw.class[fi.FullName()] = &classification{
		lock:          lt,
		unsyncName:    unsync.Name,
		regionCallees: callees,
	}
}
