package perturb

import "repro/internal/simmach"

// Built-in scenarios. Each models one of the environment drifts §2.3 and §5
// of the paper argue dynamic feedback must survive; the adaptivity
// experiments (internal/bench) pair each scenario with a workload sized so
// the change lands mid-run. Times are virtual.

// Scenario returns a built-in schedule by name.
func Scenario(name string) (*Schedule, bool) {
	switch name {
	case "crossover":
		return Crossover(), true
	case "ramp":
		return Ramp(), true
	case "periodic":
		return Periodic(), true
	case "skew":
		return Skew(), true
	default:
		return nil, false
	}
}

// ScenarioNames lists the built-in scenario names in stable order.
func ScenarioNames() []string {
	return []string{"crossover", "ramp", "periodic", "skew"}
}

// Crossover switches on heavy background lock contention at 400ms: from
// then on every uncontended acquire finds a phantom holder keeping the lock
// for 600µs. Policies pay proportionally to how often they acquire, so a
// fine-grained policy that wins the uncontended phase loses decisively to a
// coarse-grained one afterwards — the best static policy crosses over
// mid-run.
func Crossover() *Schedule {
	return &Schedule{
		Name: "crossover",
		Changes: []Change{
			{At: 400 * simmach.Millisecond, HoldEvery: 1, HoldFor: 600 * simmach.Microsecond},
		},
	}
}

// Ramp drifts the lock acquire/release hardware costs linearly from 1× to
// 12× over [50ms, 350ms] (25ms grid) — the "gradual environment change"
// regime: no single step, but the measured overhead of lock-heavy policies
// climbs round over round.
func Ramp() *Schedule {
	return &Schedule{
		Name:       "ramp",
		Resolution: 25 * simmach.Millisecond,
		Changes: []Change{
			{At: 50 * simmach.Millisecond, RampFor: 300 * simmach.Millisecond, AcquireMilli: 12000, ReleaseMilli: 12000},
		},
	}
}

// Periodic toggles the crossover-grade background contention on and off in
// 150ms half-periods (four full cycles starting at 150ms), so the best
// policy flips repeatedly and the controller must keep re-adapting in both
// directions.
func Periodic() *Schedule {
	s := &Schedule{Name: "periodic"}
	period := 300 * simmach.Millisecond
	for k := 0; k < 4; k++ {
		on := 150*simmach.Millisecond + simmach.Time(k)*period
		s.Changes = append(s.Changes,
			Change{At: on, HoldEvery: 1, HoldFor: 600 * simmach.Microsecond},
			Change{At: on + period/2, HoldEvery: -1},
		)
	}
	return s
}

// Skew slows processors 4–7 to one third of full compute speed at 150ms
// (stolen cycles / a co-scheduled competing job). Every policy slows by the
// same structural factor, so the winner should not change — the experiment
// checks the controller does not churn.
func Skew() *Schedule {
	s := &Schedule{Name: "skew"}
	c := Change{At: 150 * simmach.Millisecond}
	for proc := 4; proc < 8; proc++ {
		c.Slow = append(c.Slow, Slowdown{Proc: proc, Milli: 3000})
	}
	s.Changes = []Change{c}
	return s
}
