// Package perturb implements a deterministic, scriptable
// environment-perturbation engine for the simulated machine.
//
// The paper's central claim (§2.3, §5) is that dynamic feedback re-adapts
// when the execution environment changes between sampling rounds. A
// Schedule scripts such changes as a function of *virtual* time: step or
// ramped changes to the machine's synchronization costs, per-processor
// slowdown factors (stolen cycles), and injected background lock contention
// (phantom holders). Schedules compile to a simmach.ParamTable — a
// piecewise-constant timeline the event engine consults at the acting
// processor's clock — so perturbed runs remain exactly as deterministic as
// unperturbed ones: the environment is data, not a random process.
//
// All arithmetic is integer (multipliers in parts per 1000), so a schedule
// produces bit-identical parameter tables on every host, and a schedule's
// canonical encoding participates in interp's content-addressed cache keys.
package perturb

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/simmach"
)

// DefaultResolution is the ramp discretization grid used when a schedule
// does not set one.
const DefaultResolution = 10 * simmach.Millisecond

// Slowdown scales one processor's pure-compute speed.
type Slowdown struct {
	// Proc is the processor index, or -1 for every processor. Entries for
	// processors the current machine does not have are ignored, so one
	// schedule is usable at any processor count.
	Proc int `json:"proc"`
	// Milli is the slowdown factor in parts per 1000 (3000 = the processor
	// computes 3× slower). 1000 restores full speed. Must be >= 1.
	Milli int64 `json:"milli"`
}

// Change is one scripted modification of the environment, taking effect at
// virtual time At. The *Milli cost multipliers are expressed in parts per
// 1000 of the machine's base cost model (they do not compound across
// changes); a zero multiplier inherits the previous value. Slowdown and
// contention fields likewise inherit when zero.
type Change struct {
	// At is when the change takes effect.
	At simmach.Time `json:"at_ns"`

	// RampFor, when positive, ramps the cost multipliers linearly from
	// their previous values to the new ones over [At, At+RampFor],
	// discretized at the schedule's Resolution. Slowdown and contention
	// changes always step at At.
	RampFor simmach.Time `json:"ramp_for_ns,omitempty"`

	// Cost multipliers, parts per 1000 of the base config (0 = inherit).
	AcquireMilli int64 `json:"acquire_milli,omitempty"`
	ReleaseMilli int64 `json:"release_milli,omitempty"`
	SpinMilli    int64 `json:"spin_milli,omitempty"`
	BarrierMilli int64 `json:"barrier_milli,omitempty"`
	TimerMilli   int64 `json:"timer_milli,omitempty"`

	// Slow adjusts per-processor slowdown factors. Listed processors are
	// overridden; others keep their previous factor.
	Slow []Slowdown `json:"slow,omitempty"`

	// HoldEvery controls injected background contention: > 0 makes every
	// HoldEvery-th otherwise-uncontended acquire machine-wide find the lock
	// held by a phantom background holder for HoldFor; -1 switches the
	// injection off; 0 inherits the previous setting.
	HoldEvery int64 `json:"hold_every,omitempty"`
	// HoldFor is how long the phantom holder keeps the lock (0 = inherit).
	HoldFor simmach.Time `json:"hold_for_ns,omitempty"`
}

// Schedule is a deterministic script of environment changes in virtual
// time. The zero value (and nil) is the empty schedule: no perturbation.
type Schedule struct {
	// Name is cosmetic (reports, flags); it is excluded from the canonical
	// encoding, so renaming a scenario does not invalidate cached runs.
	//dfvet:fingerprint-exclude cosmetic label; renaming a scenario must not invalidate cached runs
	Name string `json:"name,omitempty"`
	// Resolution is the ramp discretization grid (default 10ms).
	Resolution simmach.Time `json:"resolution_ns,omitempty"`
	// Changes are applied in order; At must be strictly increasing and
	// positive (the base environment is epoch 0).
	Changes []Change `json:"changes"`
}

// Empty reports whether s perturbs anything. It is nil-safe.
func (s *Schedule) Empty() bool { return s == nil || len(s.Changes) == 0 }

// Validate checks the schedule's static constraints.
func (s *Schedule) Validate() error {
	if s.Empty() {
		return nil
	}
	if s.Resolution < 0 {
		return fmt.Errorf("perturb: negative resolution %d", s.Resolution)
	}
	prev := simmach.Time(0)
	for i, c := range s.Changes {
		if c.At <= prev {
			return fmt.Errorf("perturb: change %d at %v, must be after %v", i, c.At, prev)
		}
		prev = c.At
		if c.RampFor < 0 {
			return fmt.Errorf("perturb: change %d has negative ramp %v", i, c.RampFor)
		}
		for _, m := range []int64{c.AcquireMilli, c.ReleaseMilli, c.SpinMilli, c.BarrierMilli, c.TimerMilli} {
			if m < 0 {
				return fmt.Errorf("perturb: change %d has a negative cost multiplier", i)
			}
		}
		for j, sl := range c.Slow {
			if sl.Proc < -1 {
				return fmt.Errorf("perturb: change %d slow %d has proc %d", i, j, sl.Proc)
			}
			if sl.Milli < 1 {
				return fmt.Errorf("perturb: change %d slow %d has factor %d, must be >= 1", i, j, sl.Milli)
			}
		}
		if c.HoldEvery < -1 {
			return fmt.Errorf("perturb: change %d has HoldEvery %d", i, c.HoldEvery)
		}
		if c.HoldFor < 0 {
			return fmt.Errorf("perturb: change %d has negative HoldFor %v", i, c.HoldFor)
		}
		if c.HoldEvery > 0 && c.HoldFor == 0 {
			return fmt.Errorf("perturb: change %d enables contention without HoldFor", i)
		}
	}
	return nil
}

// FirstChangeAt returns the virtual time of the first change, or 0 for the
// empty schedule. The adaptivity experiments use it as the phase boundary
// for per-phase metrics.
func (s *Schedule) FirstChangeAt() simmach.Time {
	if s.Empty() {
		return 0
	}
	return s.Changes[0].At
}

// envState is the resolved environment at one point of the timeline:
// multipliers over the base config, slowdown factors, and contention.
type envState struct {
	acq, rel, spin, bar, timer int64
	slow                       []int64 // nil until a Slow change appears
	holdEvery                  int64
	holdFor                    simmach.Time
}

func baseState() envState {
	return envState{acq: 1000, rel: 1000, spin: 1000, bar: 1000, timer: 1000}
}

// apply folds one change into the state and returns the result.
func (st envState) apply(c Change, procs int) envState {
	if c.AcquireMilli > 0 {
		st.acq = c.AcquireMilli
	}
	if c.ReleaseMilli > 0 {
		st.rel = c.ReleaseMilli
	}
	if c.SpinMilli > 0 {
		st.spin = c.SpinMilli
	}
	if c.BarrierMilli > 0 {
		st.bar = c.BarrierMilli
	}
	if c.TimerMilli > 0 {
		st.timer = c.TimerMilli
	}
	if len(c.Slow) > 0 {
		next := make([]int64, procs)
		if st.slow != nil {
			copy(next, st.slow)
		} else {
			for i := range next {
				next[i] = 1000
			}
		}
		for _, sl := range c.Slow {
			if sl.Proc == -1 {
				for i := range next {
					next[i] = sl.Milli
				}
			} else if sl.Proc < procs {
				next[sl.Proc] = sl.Milli
			}
		}
		st.slow = next
	}
	switch {
	case c.HoldEvery > 0:
		st.holdEvery = c.HoldEvery
		if c.HoldFor > 0 {
			st.holdFor = c.HoldFor
		}
	case c.HoldEvery == -1:
		st.holdEvery = 0
	default:
		if c.HoldFor > 0 {
			st.holdFor = c.HoldFor
		}
	}
	return st
}

// lerp interpolates the cost multipliers of a to b at fraction k/n;
// slowdown and contention come from b (they step at the change point).
func lerp(a, b envState, k, n int64) envState {
	out := b
	out.acq = a.acq + (b.acq-a.acq)*k/n
	out.rel = a.rel + (b.rel-a.rel)*k/n
	out.spin = a.spin + (b.spin-a.spin)*k/n
	out.bar = a.bar + (b.bar-a.bar)*k/n
	out.timer = a.timer + (b.timer-a.timer)*k/n
	return out
}

// scaleCost applies a milli multiplier, clamping at 1ns so costs stay
// positive.
func scaleCost(c simmach.Time, milli int64) simmach.Time {
	v := c * simmach.Time(milli) / 1000
	if v < 1 {
		return 1
	}
	return v
}

// epoch materializes the state into a ParamEpoch over the base config.
func (st envState) epoch(base simmach.Config, at simmach.Time) simmach.ParamEpoch {
	cfg := base
	cfg.AcquireCost = scaleCost(base.AcquireCost, st.acq)
	cfg.ReleaseCost = scaleCost(base.ReleaseCost, st.rel)
	cfg.SpinCost = scaleCost(base.SpinCost, st.spin)
	cfg.BarrierCost = scaleCost(base.BarrierCost, st.bar)
	cfg.TimerReadCost = scaleCost(base.TimerReadCost, st.timer)
	e := simmach.ParamEpoch{Start: at, Cfg: cfg}
	if st.slow != nil {
		allIdle := true
		for _, v := range st.slow {
			if v != 1000 {
				allIdle = false
				break
			}
		}
		if !allIdle {
			e.SlowMilli = st.slow
		}
	}
	if st.holdEvery > 0 {
		e.HoldEvery = st.holdEvery
		e.HoldFor = st.holdFor
	}
	return e
}

// Table compiles the schedule against a base machine configuration into the
// parameter table the event engine consults. base should be the normalized
// config the run would otherwise use; the result is nil for an empty
// schedule.
func (s *Schedule) Table(base simmach.Config) (*simmach.ParamTable, error) {
	if s.Empty() {
		return nil, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	base = base.Normalized()
	res := s.Resolution
	if res <= 0 {
		res = DefaultResolution
	}
	cur := baseState()
	epochs := []simmach.ParamEpoch{cur.epoch(base, 0)}
	push := func(e simmach.ParamEpoch) {
		if last := &epochs[len(epochs)-1]; last.Start == e.Start {
			*last = e
		} else {
			epochs = append(epochs, e)
		}
	}
	for _, c := range s.Changes {
		next := cur.apply(c, base.Procs)
		if c.RampFor > 0 {
			steps := int64(c.RampFor / res)
			if steps < 1 {
				steps = 1
			}
			// k = 0 applies the stepped fields (slowdown, contention) at At
			// with the old costs; the costs then ramp to their targets.
			for k := int64(0); k <= steps; k++ {
				at := c.At + simmach.Time(int64(c.RampFor)*k/steps)
				push(lerp(cur, next, k, steps).epoch(base, at))
			}
		} else {
			push(next.epoch(base, c.At))
		}
		cur = next
	}
	return simmach.NewParamTable(epochs)
}

// AppendCanonical appends a self-delimiting canonical encoding of the
// schedule — everything except the cosmetic Name — to b. interp folds it
// into the content address of a simulation, so two runs differing only in
// their perturbation schedule never share a cache entry. The nil and empty
// schedules encode identically.
//
//dfvet:fingerprint Schedule Change Slowdown
func (s *Schedule) AppendCanonical(b []byte) []byte {
	if s.Empty() {
		return append(b, 0)
	}
	i64 := func(v int64) {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	b = append(b, 1)
	i64(int64(s.Resolution))
	i64(int64(len(s.Changes)))
	for _, c := range s.Changes {
		i64(int64(c.At))
		i64(int64(c.RampFor))
		i64(c.AcquireMilli)
		i64(c.ReleaseMilli)
		i64(c.SpinMilli)
		i64(c.BarrierMilli)
		i64(c.TimerMilli)
		i64(int64(len(c.Slow)))
		for _, sl := range c.Slow {
			i64(int64(sl.Proc))
			i64(sl.Milli)
		}
		i64(c.HoldEvery)
		i64(int64(c.HoldFor))
	}
	return b
}

// Key returns a short stable digest of the schedule for memo keys. The
// empty schedule's key is "".
func (s *Schedule) Key() string {
	if s.Empty() {
		return ""
	}
	sum := sha256.Sum256(s.AppendCanonical(nil))
	return hex.EncodeToString(sum[:8])
}
