package perturb

import (
	"bytes"
	"testing"

	"repro/internal/simmach"
)

func TestEmptySchedule(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Error("nil schedule not Empty")
	}
	if !(&Schedule{Name: "x"}).Empty() {
		t.Error("changeless schedule not Empty")
	}
	tbl, err := nilSched.Table(simmach.DefaultConfig(4))
	if err != nil || tbl != nil {
		t.Errorf("nil schedule Table = %v, %v; want nil, nil", tbl, err)
	}
	if nilSched.Key() != "" {
		t.Error("nil schedule Key not empty")
	}
	if got, want := nilSched.AppendCanonical(nil), (&Schedule{}).AppendCanonical(nil); !bytes.Equal(got, want) {
		t.Error("nil and empty schedules encode differently")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Schedule{
		{Changes: []Change{{At: 0}}},
		{Changes: []Change{{At: 2}, {At: 2}}},
		{Changes: []Change{{At: 1, RampFor: -1}}},
		{Changes: []Change{{At: 1, AcquireMilli: -5}}},
		{Changes: []Change{{At: 1, Slow: []Slowdown{{Proc: -2, Milli: 1000}}}}},
		{Changes: []Change{{At: 1, Slow: []Slowdown{{Proc: 0, Milli: 0}}}}},
		{Changes: []Change{{At: 1, HoldEvery: -3}}},
		{Changes: []Change{{At: 1, HoldEvery: 2}}}, // no HoldFor
		{Resolution: -1, Changes: []Change{{At: 1, HoldEvery: -1}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
		if _, err := s.Table(simmach.DefaultConfig(2)); err == nil {
			t.Errorf("case %d: Table accepted %+v", i, s)
		}
	}
}

func TestTableStepChange(t *testing.T) {
	base := simmach.DefaultConfig(2)
	s := &Schedule{Changes: []Change{
		{At: 100 * simmach.Millisecond, AcquireMilli: 4000, HoldEvery: 8, HoldFor: 50 * simmach.Microsecond},
	}}
	tbl, err := s.Table(base)
	if err != nil {
		t.Fatal(err)
	}
	es := tbl.Epochs()
	if len(es) != 2 {
		t.Fatalf("epochs = %d, want 2", len(es))
	}
	if es[0].Start != 0 || es[0].Cfg != base || es[0].HoldEvery != 0 || es[0].SlowMilli != nil {
		t.Errorf("epoch 0 = %+v, want pristine base", es[0])
	}
	e1 := es[1]
	if e1.Start != 100*simmach.Millisecond {
		t.Errorf("epoch 1 start = %v", e1.Start)
	}
	if want := 4 * base.AcquireCost; e1.Cfg.AcquireCost != want {
		t.Errorf("epoch 1 acquire = %v, want %v", e1.Cfg.AcquireCost, want)
	}
	if e1.Cfg.ReleaseCost != base.ReleaseCost || e1.Cfg.SpinCost != base.SpinCost {
		t.Errorf("unchanged costs drifted: %+v", e1.Cfg)
	}
	if e1.HoldEvery != 8 || e1.HoldFor != 50*simmach.Microsecond {
		t.Errorf("contention = every %d for %v", e1.HoldEvery, e1.HoldFor)
	}
}

func TestTableRampInterpolates(t *testing.T) {
	base := simmach.DefaultConfig(1)
	s := &Schedule{
		Resolution: 25 * simmach.Millisecond,
		Changes: []Change{
			{At: 100 * simmach.Millisecond, RampFor: 100 * simmach.Millisecond, AcquireMilli: 5000},
		},
	}
	tbl, err := s.Table(base)
	if err != nil {
		t.Fatal(err)
	}
	es := tbl.Epochs()
	// Base epoch, then 5 ramp points (k=0..4 new epochs at 100,125,...,200ms).
	if len(es) != 6 {
		t.Fatalf("epochs = %d, want 6: %+v", len(es), es)
	}
	if es[1].Start != 100*simmach.Millisecond || es[1].Cfg.AcquireCost != base.AcquireCost {
		t.Errorf("ramp start epoch = %+v, want base costs at 100ms", es[1])
	}
	mid := es[3] // k=2 of 4 → halfway: 3000‰
	if mid.Start != 150*simmach.Millisecond {
		t.Errorf("mid epoch start = %v", mid.Start)
	}
	if want := 3 * base.AcquireCost; mid.Cfg.AcquireCost != want {
		t.Errorf("mid acquire = %v, want %v", mid.Cfg.AcquireCost, want)
	}
	last := es[5]
	if last.Start != 200*simmach.Millisecond || last.Cfg.AcquireCost != 5*base.AcquireCost {
		t.Errorf("final epoch = %+v, want 5× acquire at 200ms", last)
	}
}

func TestTableSlowAndInheritance(t *testing.T) {
	base := simmach.DefaultConfig(4)
	s := &Schedule{Changes: []Change{
		{At: 10 * simmach.Millisecond, Slow: []Slowdown{{Proc: 1, Milli: 2000}, {Proc: 9, Milli: 4000}}},
		{At: 20 * simmach.Millisecond, AcquireMilli: 2000},
		{At: 30 * simmach.Millisecond, Slow: []Slowdown{{Proc: -1, Milli: 1000}}},
	}}
	tbl, err := s.Table(base)
	if err != nil {
		t.Fatal(err)
	}
	es := tbl.Epochs()
	if len(es) != 4 {
		t.Fatalf("epochs = %d, want 4", len(es))
	}
	// Out-of-range proc 9 silently ignored; proc 1 slowed.
	if want := []int64{1000, 2000, 1000, 1000}; len(es[1].SlowMilli) != 4 || es[1].SlowMilli[1] != 2000 || es[1].SlowMilli[0] != 1000 {
		t.Errorf("epoch 1 slow = %v, want %v", es[1].SlowMilli, want)
	}
	// The cost change inherits the slowdown.
	if es[2].SlowMilli == nil || es[2].SlowMilli[1] != 2000 {
		t.Errorf("epoch 2 slow = %v, want inherited slowdown", es[2].SlowMilli)
	}
	if es[2].Cfg.AcquireCost != 2*base.AcquireCost {
		t.Errorf("epoch 2 acquire = %v", es[2].Cfg.AcquireCost)
	}
	// Restoring every factor to 1000 normalizes back to a nil slice, and
	// the earlier cost change persists.
	if es[3].SlowMilli != nil {
		t.Errorf("epoch 3 slow = %v, want nil after reset", es[3].SlowMilli)
	}
	if es[3].Cfg.AcquireCost != 2*base.AcquireCost {
		t.Errorf("epoch 3 acquire = %v, want inherited 2×", es[3].Cfg.AcquireCost)
	}
}

func TestCanonicalEncodingDistinguishesSchedules(t *testing.T) {
	a := &Schedule{Changes: []Change{{At: 1, HoldEvery: 1, HoldFor: 2}}}
	b := &Schedule{Changes: []Change{{At: 1, HoldEvery: 1, HoldFor: 3}}}
	c := &Schedule{Name: "renamed", Changes: []Change{{At: 1, HoldEvery: 1, HoldFor: 2}}}
	if a.Key() == b.Key() {
		t.Error("schedules differing in HoldFor share a key")
	}
	if a.Key() != c.Key() {
		t.Error("Name participates in the canonical encoding")
	}
	for _, names := range [][2]string{{"crossover", "ramp"}, {"ramp", "periodic"}, {"periodic", "skew"}} {
		x, _ := Scenario(names[0])
		y, _ := Scenario(names[1])
		if x.Key() == y.Key() {
			t.Errorf("scenarios %s and %s share a key", names[0], names[1])
		}
	}
}

func TestScenariosCompile(t *testing.T) {
	if _, ok := Scenario("no-such"); ok {
		t.Error("unknown scenario resolved")
	}
	for _, name := range ScenarioNames() {
		s, ok := Scenario(name)
		if !ok {
			t.Fatalf("built-in %s missing", name)
		}
		if s.Name != name {
			t.Errorf("scenario %s has Name %q", name, s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", name, err)
		}
		for _, procs := range []int{1, 8, 64} {
			if _, err := s.Table(simmach.DefaultConfig(procs)); err != nil {
				t.Errorf("scenario %s does not compile at %d procs: %v", name, procs, err)
			}
		}
		if s.FirstChangeAt() <= 0 {
			t.Errorf("scenario %s has no positive first change", name)
		}
	}
}
