// Package serve implements dfserved: a long-running HTTP server that
// keeps named adaptive sections hot, shares what sampling has learned
// through a persistent policy store, and exposes live per-variant
// overhead reports.
//
// The server registers the bundled native workloads (see workloads.go) as
// dynfb Sections with SpanExecutions enabled, so sampling and production
// intervals span requests (§4.4) and the controller keeps adapting under
// sustained traffic. When a store is configured, every section persists
// its winner record after each run and warm-starts from a matching record
// at boot (§4.5 generalized across restarts), so a restarted server goes
// back to serving its best-known policies after a single sampling
// interval per section.
//
// Endpoints:
//
//	GET  /healthz   liveness, uptime, request counters
//	GET  /sections  the registered adaptive sections and their variants
//	GET  /stats     live per-variant overhead/winner report per section,
//	                plus the most recent OBL run's adaptation events
//	POST /run       execute a workload: a native section ({"section":...})
//	                or a compiled OBL program on the simulated machine
//	                ({"app":...}), optionally under a perturbation
//	                schedule ({"perturb":"crossover"} names a built-in
//	                scenario, {"schedule":{...}} inlines one); the
//	                response reports each section's adaptation events
//
// All runs draw from a shared worker pool: at most Config.MaxConcurrent
// workload executions are in flight at once, each using Config.Workers
// goroutines, so a burst of submissions queues instead of oversubscribing
// the host.
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/dynfb"
	"repro/dynfb/store"
	"repro/internal/apps"
	"repro/internal/buildinfo"
	"repro/internal/interp"
	"repro/internal/metrics"
	"repro/internal/perturb"
	"repro/internal/simcache"
	"repro/internal/simmach"
	"repro/oblc"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the worker count of each native section. Default
	// GOMAXPROCS.
	Workers int
	// TargetSampling is the sections' sampling interval. Default 5ms.
	TargetSampling time.Duration
	// TargetProduction is the sections' production interval. Default 2s.
	TargetProduction time.Duration
	// Store, when non-nil, persists each section's policy record and
	// warm-starts matching sections at boot (unless ColdStart).
	Store store.Store
	// Backend, when non-nil, supersedes Store: sections persist through a
	// tenant-scoped view of the backend (see Tenant), and the server
	// subscribes to backend updates so a winner record replicated from a
	// fleet peer warm-starts the matching cold section live, without a
	// restart. The server does not close the backend; the caller owns it.
	Backend store.Backend
	// Tenant namespaces this server's records in a shared Backend. Fleet
	// members serving different applications set different tenants and
	// never see one another's policies. Default "" (the shared namespace).
	Tenant string
	// ColdStart disables warm-starting from the Store.
	ColdStart bool
	// Logger receives structured logs. Default slog.Default().
	Logger *slog.Logger
	// MaxConcurrent bounds concurrently executing workload runs across the
	// shared pool. Default runtime.GOMAXPROCS(0), so the pool scales with
	// the host: every simulated run is independent and deterministic, and
	// a run's result does not depend on what executes alongside it.
	MaxConcurrent int
	// Cache, when non-nil, serves repeated OBL simulation requests from
	// the content-addressed simulation cache instead of re-simulating;
	// /run responses carry a "cached" flag and /stats reports the traffic.
	Cache *simcache.Cache
	// Engine selects the OBL execution engine (interp.EngineVM or
	// interp.EngineInterp). Default the bytecode VM. Results are
	// byte-identical either way, so cache keys ignore it.
	Engine string
	// Controller selects the feedback controller implementation for native
	// sections and OBL dynamic runs (core.KindRoundRobin, the default, or
	// core.KindUCB).
	Controller string
}

func (c Config) withDefaults() Config {
	if c.TargetSampling <= 0 {
		c.TargetSampling = 5 * time.Millisecond
	}
	if c.TargetProduction <= 0 {
		c.TargetProduction = 2 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.Backend != nil {
		c.Store = store.NewTenantStore(c.Backend, c.Tenant)
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// section is one registered adaptive section.
type section struct {
	w   *workload
	sec *dynfb.Section

	mu    sync.Mutex // serializes Run and parameter changes
	runs  atomic.Int64
	iters atomic.Int64
}

// Server serves named adaptive sections and OBL workloads over HTTP.
type Server struct {
	cfg   Config
	start time.Time
	mux   *http.ServeMux
	sem   chan struct{} // shared worker-pool slots

	secs   []*section
	byName map[string]*section

	appMu    sync.Mutex
	compiled map[string]*oblc.Compiled

	// adaptMu guards lastAdapt, the most recent OBL run's per-section
	// adaptation events, reported by /stats.
	adaptMu   sync.Mutex
	lastAdapt *adaptRecordJSON

	requests atomic.Int64
	runsOK   atomic.Int64
	runsErr  atomic.Int64

	// warmHits counts warm starts: sections seeded from the store at boot
	// plus sections reseeded live from a replicated fleet record. A fleet
	// replica with warmHits > 0 demonstrably skipped sampling work thanks
	// to a peer's experience.
	warmHits atomic.Int64

	reg         *metrics.Registry
	runSeconds  *metrics.Histogram
	cancelWatch func()
	draining    atomic.Bool
}

// adaptEventJSON is one controller adaptation event: after which sampling
// round the controller moved production onto which policy, and when
// (virtual time) the switch took effect.
type adaptEventJSON struct {
	Round  int    `json:"round"`
	Policy string `json:"policy"`
	AtNS   int64  `json:"at_ns"`
}

// adaptRecordJSON is the most recent OBL run's adaptation report.
type adaptRecordJSON struct {
	App      string                      `json:"app"`
	Policy   string                      `json:"policy"`
	Procs    int                         `json:"procs"`
	Perturb  string                      `json:"perturb,omitempty"`
	Sections map[string][]adaptEventJSON `json:"sections"`
}

// adaptEvents extracts a section's adaptation events: the initial
// production selection plus every production entry that changed version.
func adaptEvents(sec *interp.SectionStats) []adaptEventJSON {
	var out []adaptEventJSON
	for i, sw := range sec.Switches {
		if i > 0 && sw.Version == sec.Switches[i-1].Version {
			continue
		}
		out = append(out, adaptEventJSON{Round: sw.Round, Policy: sw.Label, AtNS: int64(sw.At)})
	}
	return out
}

// New builds a server with every bundled native workload registered.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		start:    time.Now(), //dfvet:allow walltime server start stamp for live uptime reporting
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		byName:   map[string]*section{},
		compiled: map[string]*oblc.Compiled{},
	}
	for _, w := range nativeWorkloads() {
		sec, err := dynfb.NewSection(dynfb.Config{
			Name:             w.name,
			Workers:          cfg.Workers,
			TargetSampling:   cfg.TargetSampling,
			TargetProduction: cfg.TargetProduction,
			SpanExecutions:   true,
			Controller:       cfg.Controller,
			Store:            cfg.Store,
			WarmStart:        cfg.Store != nil && !cfg.ColdStart,
		}, w.variants...)
		if err != nil {
			return nil, fmt.Errorf("serve: section %s: %w", w.name, err)
		}
		if sec.WarmStarted() {
			s.warmHits.Add(1)
			cfg.Logger.Info("section warm-started from store", "section", w.name, "tenant", cfg.Tenant)
		}
		reg := &section{w: w, sec: sec}
		s.secs = append(s.secs, reg)
		s.byName[w.name] = reg
	}
	if cfg.Backend != nil && !cfg.ColdStart {
		// Live fleet warm start: when a record for one of our cold
		// sections lands in the backend (replicated from a peer or written
		// by a co-tenant process), reseed that section so it adopts the
		// fleet's winner without restarting.
		s.cancelWatch = cfg.Backend.Watch(func(rec store.VersionedRecord) {
			if rec.Key.Tenant != cfg.Tenant {
				return
			}
			reg, ok := s.byName[rec.Key.Section]
			if !ok || reg.sec.WarmStarted() {
				return
			}
			if reg.sec.Reseed() {
				s.warmHits.Add(1)
				cfg.Logger.Info("section warm-started from fleet record",
					"section", rec.Key.Section, "tenant", cfg.Tenant, "origin", rec.Origin)
			}
		})
	}
	s.registerMetrics()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /sections", s.handleSections)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.Handle("GET /metrics", s.reg.Handler())
	return s, nil
}

// registerMetrics builds the /metrics registry: request and run counters,
// run latencies, per-section adaptation switches, warm-start hits, and —
// when the store is replicated — sync lag and pending-push gauges.
func (s *Server) registerMetrics() {
	s.reg = metrics.NewRegistry()
	s.reg.BuildInfo()
	s.reg.GaugeFunc("dfserved_requests_total",
		"HTTP requests received.", func() float64 { return float64(s.requests.Load()) })
	s.reg.GaugeFunc("dfserved_runs_ok_total",
		"Workload runs completed successfully.", func() float64 { return float64(s.runsOK.Load()) })
	s.reg.GaugeFunc("dfserved_runs_err_total",
		"Workload runs rejected or failed.", func() float64 { return float64(s.runsErr.Load()) })
	s.reg.GaugeFunc("dfserved_warm_start_hits_total",
		"Sections seeded from a store record (at boot or live from the fleet).",
		func() float64 { return float64(s.warmHits.Load()) })
	s.reg.GaugeFunc("dfserved_uptime_seconds",
		"Seconds since the server started.", func() float64 { return time.Since(s.start).Seconds() }) //dfvet:allow walltime live uptime gauge; never feeds simulation results
	s.runSeconds = s.reg.Histogram("dfserved_run_seconds",
		"Wall-clock latency of workload runs.", metrics.DurationBuckets)
	s.reg.GaugeVecFunc("dfserved_section_switches",
		"Adaptation events per section: production entries that changed the chosen variant.",
		[]string{"section"}, func() []metrics.LabeledValue {
			out := make([]metrics.LabeledValue, 0, len(s.secs))
			for _, reg := range s.secs {
				snap := reg.sec.StatsSnapshot()
				out = append(out, metrics.LabeledValue{
					Labels: []string{reg.w.name}, Value: float64(snap.Switches)})
			}
			return out
		})
	if rs, ok := s.cfg.Backend.(*store.ReplStore); ok {
		s.reg.GaugeFunc("dfserved_store_sync_lag_seconds",
			"Time since the replicated store last synchronized with the hub.",
			func() float64 { return rs.Status().SyncLag(time.Now()).Seconds() }) //dfvet:allow walltime live replication-lag gauge against the hub clock
		s.reg.GaugeFunc("dfserved_store_connected",
			"1 while the replicated store is connected to the hub, 0 when partitioned.",
			func() float64 {
				if rs.Status().Connected {
					return 1
				}
				return 0
			})
		s.reg.GaugeFunc("dfserved_store_pending_pushes",
			"Local records waiting to be pushed to the hub.",
			func() float64 { return float64(rs.Status().Pending) })
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// Close stops the backend watch and persists every section's record
// (best effort, first error wins). It does not close the Backend — the
// caller owns it and typically flushes it after the HTTP listener drains.
func (s *Server) Close() error {
	s.draining.Store(true)
	if s.cancelWatch != nil {
		s.cancelWatch()
	}
	var first error
	for _, reg := range s.secs {
		if err := reg.sec.Persist(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WarmStartHits counts sections seeded from a store record, at boot or
// live from a replicated fleet record.
func (s *Server) WarmStartHits() int64 { return s.warmHits.Load() }

// SectionNames returns the registered native section names.
func (s *Server) SectionNames() []string {
	names := make([]string, len(s.secs))
	for i, reg := range s.secs {
		names[i] = reg.w.name
	}
	return names
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"version":        buildinfo.Version(),
		"go":             buildinfo.Runtime(),
		"uptime_seconds": time.Since(s.start).Seconds(), //dfvet:allow walltime live uptime in the status response
		"sections":       len(s.secs),
		"requests":       s.requests.Load(),
		"runs_ok":        s.runsOK.Load(),
		"runs_err":       s.runsErr.Load(),
	})
}

// variantJSON is one variant's aggregates in wire form.
type variantJSON struct {
	Name         string  `json:"name"`
	TimesSampled int     `json:"times_sampled"`
	TimesChosen  int     `json:"times_chosen"`
	MeanOverhead float64 `json:"mean_overhead"`
	LastOverhead float64 `json:"last_overhead"`
}

// snapshotJSON is a dynfb.Snapshot in wire form.
type snapshotJSON struct {
	Phase          string        `json:"phase"`
	Rounds         int           `json:"rounds"`
	Current        string        `json:"current"`
	Winner         string        `json:"winner,omitempty"`
	WinnerOverhead float64       `json:"winner_overhead"`
	WarmStarted    bool          `json:"warm_started"`
	Switches       int           `json:"switches"`
	Variants       []variantJSON `json:"variants"`
}

func toSnapshotJSON(snap dynfb.Snapshot) snapshotJSON {
	out := snapshotJSON{
		Phase:          snap.Phase,
		Rounds:         snap.Rounds,
		Current:        snap.Current,
		Winner:         snap.Winner,
		WinnerOverhead: snap.WinnerOverhead,
		WarmStarted:    snap.WarmStarted,
		Switches:       snap.Switches,
	}
	for _, st := range snap.Stats {
		out.Variants = append(out.Variants, variantJSON{
			Name:         st.Name,
			TimesSampled: st.TimesSampled,
			TimesChosen:  st.TimesChosen,
			MeanOverhead: st.MeanOverhead,
			LastOverhead: st.LastOverhead,
		})
	}
	return out
}

func (s *Server) handleSections(w http.ResponseWriter, r *http.Request) {
	type sectionJSON struct {
		Name         string   `json:"name"`
		Description  string   `json:"description"`
		Variants     []string `json:"variants"`
		DefaultIters int      `json:"default_iters"`
		Runs         int64    `json:"runs"`
		Iterations   int64    `json:"iterations"`
		WarmStarted  bool     `json:"warm_started"`
	}
	out := struct {
		Sections []sectionJSON `json:"sections"`
		OBLApps  []string      `json:"obl_apps"`
	}{OBLApps: apps.Names}
	for _, reg := range s.secs {
		var names []string
		for _, v := range reg.w.variants {
			names = append(names, v.Name)
		}
		out.Sections = append(out.Sections, sectionJSON{
			Name:         reg.w.name,
			Description:  reg.w.desc,
			Variants:     names,
			DefaultIters: reg.w.defaultIters,
			Runs:         reg.runs.Load(),
			Iterations:   reg.iters.Load(),
			WarmStarted:  reg.sec.WarmStarted(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sections := map[string]snapshotJSON{}
	for _, reg := range s.secs {
		sections[reg.w.name] = toSnapshotJSON(reg.sec.StatsSnapshot())
	}
	doc := map[string]any{
		"server": map[string]any{
			"uptime_seconds":  time.Since(s.start).Seconds(), //dfvet:allow walltime live uptime in the status response
			"version":         buildinfo.Version(),
			"requests":        s.requests.Load(),
			"runs_ok":         s.runsOK.Load(),
			"runs_err":        s.runsErr.Load(),
			"max_concurrent":  s.cfg.MaxConcurrent,
			"store":           s.cfg.Store != nil,
			"tenant":          s.cfg.Tenant,
			"warm_start_hits": s.warmHits.Load(),
		},
		"sections": sections,
	}
	if rs, ok := s.cfg.Backend.(*store.ReplStore); ok {
		st := rs.Status()
		doc["store_sync"] = map[string]any{
			"connected":        st.Connected,
			"hub_seq":          st.HubSeq,
			"pending_pushes":   st.Pending,
			"sync_lag_seconds": st.SyncLag(time.Now()).Seconds(), //dfvet:allow walltime live replication lag in the status response
		}
	}
	if s.cfg.Cache != nil {
		doc["simcache"] = s.cfg.Cache.Stats()
	}
	s.adaptMu.Lock()
	if s.lastAdapt != nil {
		doc["adaptations"] = s.lastAdapt
	}
	s.adaptMu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

// runRequest is the body of POST /run. Exactly one of Section and App
// must be set.
type runRequest struct {
	// Section runs a registered native adaptive section.
	Section string `json:"section,omitempty"`
	// Iters overrides the section's default iteration count.
	Iters int `json:"iters,omitempty"`
	// App runs a bundled OBL application on the simulated machine.
	App string `json:"app,omitempty"`
	// Procs is the simulated processor count (OBL runs). Default 8.
	Procs int `json:"procs,omitempty"`
	// Policy is a static policy name, "dynamic" (default) or "serial"
	// (OBL runs).
	Policy string `json:"policy,omitempty"`
	// Params are workload parameters: booleans/numbers for native
	// sections, integer program-parameter overrides for OBL apps.
	Params map[string]any `json:"params,omitempty"`
	// Perturb names a built-in perturbation scenario (internal/perturb)
	// applied to the simulated machine (OBL runs only).
	Perturb string `json:"perturb,omitempty"`
	// Schedule is an inline perturbation schedule (OBL runs only);
	// mutually exclusive with Perturb.
	Schedule *perturb.Schedule `json:"schedule,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.runsErr.Add(1)
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	switch {
	case req.Section != "" && req.App != "":
		s.runsErr.Add(1)
		writeError(w, http.StatusBadRequest, "set exactly one of \"section\" and \"app\"")
	case req.Section != "":
		s.runSection(w, r, req)
	case req.App != "":
		s.runApp(w, r, req)
	default:
		s.runsErr.Add(1)
		writeError(w, http.StatusBadRequest, "set \"section\" (one of %v) or \"app\" (one of %v)",
			s.SectionNames(), apps.Names)
	}
}

// acquireSlot takes a shared worker-pool slot, honoring cancellation.
func (s *Server) acquireSlot(r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	case <-r.Context().Done():
		return false
	}
}

func (s *Server) runSection(w http.ResponseWriter, r *http.Request, req runRequest) {
	reg, ok := s.byName[req.Section]
	if !ok {
		s.runsErr.Add(1)
		writeError(w, http.StatusNotFound, "unknown section %q (have %v)", req.Section, s.SectionNames())
		return
	}
	if req.Perturb != "" || req.Schedule != nil {
		// Native sections run on the host, not the simulated machine;
		// there is no parameter table to perturb.
		s.runsErr.Add(1)
		writeError(w, http.StatusBadRequest, "perturbation applies to simulated OBL runs only, not native sections")
		return
	}
	iters := req.Iters
	if iters == 0 {
		iters = reg.w.defaultIters
	}
	if iters < 0 || iters > 100_000_000 {
		s.runsErr.Add(1)
		writeError(w, http.StatusBadRequest, "iters %d outside [0, 1e8]", iters)
		return
	}
	if !s.acquireSlot(r) {
		s.runsErr.Add(1)
		writeError(w, http.StatusServiceUnavailable, "request canceled while queued")
		return
	}
	defer func() { <-s.sem }()

	reg.mu.Lock()
	for key, val := range req.Params {
		if err := reg.w.setParam(key, val); err != nil {
			reg.mu.Unlock()
			s.runsErr.Add(1)
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	start := time.Now() //dfvet:allow walltime wall latency of serving the request, observed into a histogram
	reg.sec.Run(0, iters)
	wall := time.Since(start) //dfvet:allow walltime wall latency of serving the request, observed into a histogram
	reg.mu.Unlock()

	s.runSeconds.Observe(wall.Seconds())
	reg.runs.Add(1)
	reg.iters.Add(int64(iters))
	s.runsOK.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":    "section",
		"section": req.Section,
		"iters":   iters,
		"wall_ns": wall.Nanoseconds(),
		"stats":   toSnapshotJSON(reg.sec.StatsSnapshot()),
	})
}

// compiledApp compiles a bundled application once and caches it.
func (s *Server) compiledApp(name string) (*oblc.Compiled, error) {
	s.appMu.Lock()
	defer s.appMu.Unlock()
	if c, ok := s.compiled[name]; ok {
		return c, nil
	}
	c, err := apps.Compile(name)
	if err != nil {
		return nil, err
	}
	s.compiled[name] = c
	return c, nil
}

func (s *Server) runApp(w http.ResponseWriter, r *http.Request, req runRequest) {
	c, err := s.compiledApp(req.App)
	if err != nil {
		s.runsErr.Add(1)
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	procs := req.Procs
	if procs == 0 {
		procs = 8
	}
	if procs < 1 || procs > 64 {
		s.runsErr.Add(1)
		writeError(w, http.StatusBadRequest, "procs %d outside [1, 64]", procs)
		return
	}
	policy := req.Policy
	if policy == "" {
		policy = interp.PolicyDynamic
	}
	valid := policy == interp.PolicyDynamic || policy == "serial"
	for _, p := range oblc.Policies() {
		valid = valid || policy == p
	}
	if !valid {
		s.runsErr.Add(1)
		writeError(w, http.StatusBadRequest, "unknown policy %q (want dynamic, serial, or one of %v)",
			policy, oblc.Policies())
		return
	}
	var sched *perturb.Schedule
	perturbName := ""
	switch {
	case req.Perturb != "" && req.Schedule != nil:
		s.runsErr.Add(1)
		writeError(w, http.StatusBadRequest, "set at most one of \"perturb\" and \"schedule\"")
		return
	case req.Perturb != "":
		var ok bool
		if sched, ok = perturb.Scenario(req.Perturb); !ok {
			s.runsErr.Add(1)
			writeError(w, http.StatusBadRequest, "unknown perturbation scenario %q (have %v)",
				req.Perturb, perturb.ScenarioNames())
			return
		}
		perturbName = req.Perturb
	case req.Schedule != nil:
		if err := req.Schedule.Validate(); err != nil {
			s.runsErr.Add(1)
			writeError(w, http.StatusBadRequest, "bad perturbation schedule: %v", err)
			return
		}
		sched = req.Schedule
		perturbName = "custom"
		if req.Schedule.Name != "" {
			perturbName = req.Schedule.Name
		}
	}
	// Serve the fast test-scale inputs by default; clients override
	// individual program parameters (integers) through params.
	params := apps.TestParams(req.App)
	for key, val := range req.Params {
		f, ok := val.(float64)
		if !ok || f != float64(int64(f)) {
			s.runsErr.Add(1)
			writeError(w, http.StatusBadRequest, "parameter %q wants an integer, got %v", key, val)
			return
		}
		params[key] = int64(f)
	}
	if !s.acquireSlot(r) {
		s.runsErr.Add(1)
		writeError(w, http.StatusServiceUnavailable, "request canceled while queued")
		return
	}
	defer func() { <-s.sem }()

	prog := c.Parallel
	opts := interp.Options{
		Procs:            procs,
		Policy:           policy,
		TargetSampling:   simmach.Time(s.cfg.TargetSampling),
		TargetProduction: simmach.Time(s.cfg.TargetProduction),
		Params:           params,
		Perturb:          sched,
		Engine:           s.cfg.Engine,
		Controller:       s.cfg.Controller,
	}
	if policy == "serial" {
		prog = c.Serial
		opts.Policy = ""
		opts.Procs = 1
	}
	start := time.Now() //dfvet:allow walltime wall latency of serving the request, observed into a histogram
	var res *interp.Result
	cached := false
	key := ""
	if s.cfg.Cache != nil {
		if k, ok := interp.CacheKey(prog, opts); ok {
			key = k
			res, cached = s.cfg.Cache.Get(key)
		}
	}
	if !cached {
		res, err = interp.Run(prog, opts)
		if err != nil {
			s.runsErr.Add(1)
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if key != "" {
			s.cfg.Cache.Put(key, res)
		}
	}
	wall := time.Since(start) //dfvet:allow walltime wall latency of serving the request, observed into a histogram
	s.runSeconds.Observe(wall.Seconds())

	type appSectionJSON struct {
		Name       string           `json:"name"`
		Iterations int64            `json:"iterations"`
		Versions   []string         `json:"versions"`
		Chosen     string           `json:"chosen"`
		Switches   []adaptEventJSON `json:"switches,omitempty"`
	}
	var sections []appSectionJSON
	adapt := &adaptRecordJSON{App: req.App, Policy: policy, Procs: procs,
		Perturb: perturbName, Sections: map[string][]adaptEventJSON{}}
	for _, sec := range res.Sections {
		chosen := ""
		if sec.ChosenVersion >= 0 && sec.ChosenVersion < len(sec.VersionLabels) {
			chosen = sec.VersionLabels[sec.ChosenVersion]
		}
		events := adaptEvents(sec)
		if len(events) > 0 {
			adapt.Sections[sec.Name] = events
		}
		sections = append(sections, appSectionJSON{
			Name:       sec.Name,
			Iterations: sec.Iterations,
			Versions:   sec.VersionLabels,
			Chosen:     chosen,
			Switches:   events,
		})
	}
	sort.Slice(sections, func(i, j int) bool { return sections[i].Name < sections[j].Name })
	if len(adapt.Sections) > 0 {
		s.adaptMu.Lock()
		s.lastAdapt = adapt
		s.adaptMu.Unlock()
	}
	s.runsOK.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"kind":            "obl",
		"app":             req.App,
		"policy":          policy,
		"procs":           procs,
		"perturb":         perturbName,
		"cached":          cached,
		"wall_ns":         wall.Nanoseconds(),
		"virtual_ns":      int64(res.Time),
		"acquires":        res.Counters.Acquires,
		"failed_acquires": res.Counters.FailedAcquires,
		"lock_ns":         int64(res.Counters.LockTime),
		"wait_ns":         int64(res.Counters.WaitTime),
		"output":          res.Output,
		"sections":        sections,
	})
}
