package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/dynfb/store"
	"repro/internal/simcache"
)

func testServer(t *testing.T, st store.Store) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		Workers:          2,
		TargetSampling:   time.Millisecond,
		TargetProduction: 50 * time.Millisecond,
		Store:            st,
		MaxConcurrent:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func postRun(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	return resp.StatusCode, out
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, nil)
	var out struct {
		Status   string  `json:"status"`
		Uptime   float64 `json:"uptime_seconds"`
		Sections int     `json:"sections"`
	}
	getJSON(t, ts.URL+"/healthz", &out)
	if out.Status != "ok" || out.Sections != 2 {
		t.Errorf("healthz = %+v", out)
	}
}

func TestSectionsListing(t *testing.T) {
	_, ts := testServer(t, nil)
	var out struct {
		Sections []struct {
			Name     string   `json:"name"`
			Variants []string `json:"variants"`
		} `json:"sections"`
		OBLApps []string `json:"obl_apps"`
	}
	getJSON(t, ts.URL+"/sections", &out)
	if len(out.Sections) != 2 || out.Sections[0].Name != "sort" || out.Sections[1].Name != "histogram" {
		t.Fatalf("sections = %+v", out.Sections)
	}
	if len(out.Sections[0].Variants) != 2 {
		t.Errorf("sort variants = %v", out.Sections[0].Variants)
	}
	if len(out.OBLApps) != 3 {
		t.Errorf("obl apps = %v", out.OBLApps)
	}
}

// TestRunSectionAndLiveStats is the serving acceptance test: a workload
// submission runs an adaptive section, and /stats then reports live
// per-variant overheads and the winner.
func TestRunSectionAndLiveStats(t *testing.T) {
	_, ts := testServer(t, nil)
	status, out := postRun(t, ts.URL, `{"section":"sort","iters":30000,"params":{"shuffled":false}}`)
	if status != http.StatusOK {
		t.Fatalf("run: status %d: %v", status, out)
	}
	if out["kind"] != "section" || out["iters"].(float64) != 30000 {
		t.Errorf("run response = %v", out)
	}
	stats, ok := out["stats"].(map[string]any)
	if !ok || stats["current"] == "" {
		t.Fatalf("run response lacks stats: %v", out)
	}

	var live struct {
		Server   map[string]any          `json:"server"`
		Sections map[string]snapshotJSON `json:"sections"`
	}
	getJSON(t, ts.URL+"/stats", &live)
	snap, ok := live.Sections["sort"]
	if !ok {
		t.Fatalf("no sort section in stats: %+v", live.Sections)
	}
	if len(snap.Variants) != 2 {
		t.Fatalf("variants = %+v", snap.Variants)
	}
	sampled := 0
	for _, v := range snap.Variants {
		sampled += v.TimesSampled
	}
	if sampled < 2 {
		t.Errorf("stats report %d sampled intervals, want at least one per variant: %+v", sampled, snap)
	}
	if snap.Winner == "" {
		t.Errorf("no winner after a 30000-iteration run: %+v", snap)
	}
	if live.Server["runs_ok"].(float64) < 1 {
		t.Errorf("server counters = %v", live.Server)
	}
}

// TestServerWarmRestart restarts the server against the same store and
// checks the sections come back warm.
func TestServerWarmRestart(t *testing.T) {
	st := store.NewMemStore()
	srv, ts := testServer(t, st)
	status, out := postRun(t, ts.URL, `{"section":"sort","iters":30000}`)
	if status != http.StatusOK {
		t.Fatalf("run: status %d: %v", status, out)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := st.Load("sort"); !found {
		t.Fatal("no persisted record after run + close")
	}

	_, ts2 := testServer(t, st)
	var live struct {
		Sections map[string]snapshotJSON `json:"sections"`
	}
	getJSON(t, ts2.URL+"/stats", &live)
	if !live.Sections["sort"].WarmStarted {
		t.Errorf("restarted sort section not warm-started: %+v", live.Sections["sort"])
	}
	// The histogram section never ran, so it has no record and must have
	// cold-started — a partial store is fine.
	if live.Sections["histogram"].WarmStarted {
		t.Errorf("histogram warm-started without a record: %+v", live.Sections["histogram"])
	}
}

func TestRunOBLApp(t *testing.T) {
	_, ts := testServer(t, nil)
	status, out := postRun(t, ts.URL, `{"app":"string","procs":4,"policy":"original"}`)
	if status != http.StatusOK {
		t.Fatalf("obl run: status %d: %v", status, out)
	}
	if out["kind"] != "obl" || out["virtual_ns"].(float64) <= 0 {
		t.Errorf("obl response = %v", out)
	}
	if out["acquires"].(float64) <= 0 {
		t.Errorf("no lock activity reported: %v", out)
	}
	sections, ok := out["sections"].([]any)
	if !ok || len(sections) == 0 {
		t.Errorf("no per-section report: %v", out)
	}
}

func TestRunOBLAppCached(t *testing.T) {
	cache, err := simcache.New(simcache.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Workers:          2,
		TargetSampling:   time.Millisecond,
		TargetProduction: 50 * time.Millisecond,
		MaxConcurrent:    2,
		Cache:            cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	body := `{"app":"string","procs":4,"policy":"original"}`
	status, cold := postRun(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("cold run: status %d: %v", status, cold)
	}
	if cold["cached"] != false {
		t.Errorf("first run reported cached: %v", cold["cached"])
	}
	status, warm := postRun(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("warm run: status %d: %v", status, warm)
	}
	if warm["cached"] != true {
		t.Errorf("repeat run not served from cache: %v", warm["cached"])
	}
	// Identical simulated outcome either way.
	for _, k := range []string{"virtual_ns", "acquires", "lock_ns", "wait_ns"} {
		if cold[k] != warm[k] {
			t.Errorf("%s differs: cold %v, warm %v", k, cold[k], warm[k])
		}
	}
	// A different configuration is a different content address.
	status, other := postRun(t, ts.URL, `{"app":"string","procs":2,"policy":"original"}`)
	if status != http.StatusOK {
		t.Fatalf("other run: status %d: %v", status, other)
	}
	if other["cached"] != false {
		t.Error("different procs count served from cache")
	}
	var stats struct {
		Simcache *simcache.Stats `json:"simcache"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Simcache == nil || stats.Simcache.Hits() != 1 || stats.Simcache.Puts != 2 {
		t.Errorf("/stats simcache = %+v, want 1 hit and 2 puts", stats.Simcache)
	}
}

// TestRunOBLAppPerturbed exercises the perturbation path of /run: a named
// scenario and an inline schedule both apply to the simulated machine (the
// inline one changes the virtual outcome), the response labels the
// schedule and reports per-section adaptation events, and /stats carries
// the most recent run's events.
func TestRunOBLAppPerturbed(t *testing.T) {
	_, ts := testServer(t, nil)
	base := `{"app":"water","procs":4,"policy":"dynamic"}`
	status, plain := postRun(t, ts.URL, base)
	if status != http.StatusOK {
		t.Fatalf("base run: status %d: %v", status, plain)
	}
	if plain["perturb"] != "" {
		t.Errorf("unperturbed run labeled %q", plain["perturb"])
	}

	status, named := postRun(t, ts.URL, `{"app":"water","procs":4,"policy":"dynamic","perturb":"crossover"}`)
	if status != http.StatusOK {
		t.Fatalf("named scenario run: status %d: %v", status, named)
	}
	if named["perturb"] != "crossover" {
		t.Errorf("scenario label = %v, want crossover", named["perturb"])
	}

	// An aggressive step at 1ms: 20x acquire/release cost must move the
	// virtual outcome of the same program.
	inline := `{"app":"water","procs":4,"policy":"dynamic","schedule":{"changes":[{"at_ns":1000000,"acquire_milli":20000,"release_milli":20000}]}}`
	status, custom := postRun(t, ts.URL, inline)
	if status != http.StatusOK {
		t.Fatalf("inline schedule run: status %d: %v", status, custom)
	}
	if custom["perturb"] != "custom" {
		t.Errorf("inline schedule label = %v, want custom", custom["perturb"])
	}
	if custom["virtual_ns"] == plain["virtual_ns"] {
		t.Errorf("perturbed run reported the unperturbed virtual time %v", plain["virtual_ns"])
	}

	// Dynamic runs report their controller's adaptation events per section.
	sections, ok := custom["sections"].([]any)
	if !ok || len(sections) == 0 {
		t.Fatalf("no per-section report: %v", custom)
	}
	events := 0
	for _, raw := range sections {
		sec := raw.(map[string]any)
		if sw, ok := sec["switches"].([]any); ok {
			events += len(sw)
		}
	}
	if events == 0 {
		t.Errorf("dynamic run reported no adaptation events: %v", custom)
	}

	var live struct {
		Adaptations *adaptRecordJSON `json:"adaptations"`
	}
	getJSON(t, ts.URL+"/stats", &live)
	if live.Adaptations == nil || live.Adaptations.App != "water" || len(live.Adaptations.Sections) == 0 {
		t.Errorf("/stats adaptations = %+v", live.Adaptations)
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := testServer(t, nil)
	cases := []struct {
		body   string
		status int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"section":"sort","app":"water"}`, http.StatusBadRequest},
		{`{"section":"nope"}`, http.StatusNotFound},
		{`{"app":"nope"}`, http.StatusNotFound},
		{`{"section":"sort","iters":-5}`, http.StatusBadRequest},
		{`{"section":"sort","params":{"bogus":true}}`, http.StatusBadRequest},
		{`{"section":"sort","params":{"shuffled":"yes"}}`, http.StatusBadRequest},
		{`{"app":"water","procs":1000}`, http.StatusBadRequest},
		{`{"app":"water","policy":"nope"}`, http.StatusBadRequest},
		{`{"app":"water","params":{"nmol":1.5}}`, http.StatusBadRequest},
		{`{"unknown_field":1}`, http.StatusBadRequest},
		{`{"section":"sort","perturb":"crossover"}`, http.StatusBadRequest},
		{`{"app":"water","perturb":"nope"}`, http.StatusBadRequest},
		{`{"app":"water","perturb":"crossover","schedule":{"changes":[]}}`, http.StatusBadRequest},
		{`{"app":"water","schedule":{"changes":[{"at_ns":0,"acquire_milli":2000}]}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		status, out := postRun(t, ts.URL, c.body)
		if status != c.status {
			t.Errorf("%s: status %d (%v), want %d", c.body, status, out, c.status)
		}
	}
}
