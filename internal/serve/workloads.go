package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/dynfb"
)

// A workload is one bundled native computation served as a named adaptive
// section: several variants of the same work whose relative cost depends
// on a workload parameter the client can flip between requests, so the
// dynamic feedback controller has something real to adapt to under live
// traffic.
type workload struct {
	name         string
	desc         string
	defaultIters int
	variants     []dynfb.Variant
	// setParam applies one request parameter before a run ("" keys never
	// reach it). It is called with the section serialized, so plain writes
	// to atomics are enough.
	setParam func(key string, val any) error
}

func nativeWorkloads() []*workload {
	return []*workload{newSortWorkload(), newHistogramWorkload()}
}

func paramBool(key string, val any) (bool, error) {
	switch v := val.(type) {
	case bool:
		return v, nil
	case float64: // JSON numbers arrive as float64
		return v != 0, nil
	default:
		return false, fmt.Errorf("parameter %q wants a boolean, got %T", key, val)
	}
}

// newSortWorkload is adaptive algorithm selection (§1 of the paper): sort
// a stream of chunks with insertion sort (linear on nearly-sorted input,
// quadratic on shuffled input) versus heapsort (n·log n always). The
// "shuffled" parameter flips the input regime; wasted effort beyond ~n
// element operations is charged as overhead.
func newSortWorkload() *workload {
	const chunkLen = 256
	const nsPerStep = 3
	var shuffled atomic.Bool

	makeChunk := func(i int) []int {
		chunk := make([]int, chunkLen)
		for j := range chunk {
			chunk[j] = j
		}
		if shuffled.Load() {
			state := uint64(i*2654435761 + 12345)
			for j := chunkLen - 1; j > 0; j-- {
				state = state*6364136223846793005 + 1442695040888963407
				k := int(state>>33) % (j + 1)
				chunk[j], chunk[k] = chunk[k], chunk[j]
			}
		} else if i%8 == 0 {
			chunk[0], chunk[1] = chunk[1], chunk[0] // nearly sorted
		}
		return chunk
	}

	insertion := func(a []int) int {
		moves := 0
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
				moves++
			}
			a[j+1] = v
		}
		return moves
	}
	heapsort := func(a []int) int {
		steps := 0
		n := len(a)
		sift := func(lo, hi int) {
			root := lo
			for {
				child := 2*root + 1
				if child >= hi {
					return
				}
				if child+1 < hi && a[child] < a[child+1] {
					child++
				}
				if a[root] >= a[child] {
					return
				}
				a[root], a[child] = a[child], a[root]
				root = child
				steps++
			}
		}
		for i := n/2 - 1; i >= 0; i-- {
			sift(i, n)
		}
		for i := n - 1; i > 0; i-- {
			a[0], a[i] = a[i], a[0]
			sift(0, i)
		}
		return steps
	}

	mk := func(name string, sort func([]int) int) dynfb.Variant {
		return dynfb.Variant{Name: name, Body: func(ctx *dynfb.Ctx, i int) {
			chunk := makeChunk(i)
			effort := sort(chunk)
			if waste := effort - chunkLen; waste > 0 {
				ctx.AddOverhead(time.Duration(waste*nsPerStep) * time.Nanosecond)
			}
		}}
	}
	return &workload{
		name:         "sort",
		desc:         "adaptive algorithm selection: insertion sort vs heapsort over a chunk stream; parameter \"shuffled\" flips the input regime",
		defaultIters: 20000,
		variants:     []dynfb.Variant{mk("insertion", insertion), mk("heapsort", heapsort)},
		setParam: func(key string, val any) error {
			if key != "shuffled" {
				return fmt.Errorf("unknown parameter %q (sort accepts \"shuffled\")", key)
			}
			b, err := paramBool(key, val)
			if err != nil {
				return err
			}
			shuffled.Store(b)
			return nil
		},
	}
}

// newHistogramWorkload is adaptive lock granularity (the quickstart
// workload, served): fill a histogram under one global mutex versus one
// mutex per bucket. The "hot" parameter skews the key distribution onto a
// few buckets, which collapses the striped discipline's advantage.
func newHistogramWorkload() *workload {
	const buckets = 64
	var hot atomic.Bool

	histGlobal := make([]int, buckets)
	histStriped := make([]int, buckets)
	global := dynfb.NewMutex()
	stripe := make([]*dynfb.Mutex, buckets)
	for i := range stripe {
		stripe[i] = dynfb.NewMutex()
	}
	key := func(i int) int {
		if hot.Load() {
			return (i * 2654435761 % buckets) % 4 // 4 hot buckets
		}
		return i * 2654435761 % buckets
	}

	variants := []dynfb.Variant{
		{Name: "global-lock", Body: func(ctx *dynfb.Ctx, i int) {
			k := key(i)
			ctx.Lock(global)
			histGlobal[k]++
			ctx.Unlock(global)
		}},
		{Name: "per-bucket", Body: func(ctx *dynfb.Ctx, i int) {
			k := key(i)
			ctx.Lock(stripe[k])
			histStriped[k]++
			ctx.Unlock(stripe[k])
		}},
	}
	return &workload{
		name:         "histogram",
		desc:         "adaptive lock granularity: one global mutex vs per-bucket mutexes; parameter \"hot\" skews the key distribution",
		defaultIters: 200000,
		variants:     variants,
		setParam: func(key string, val any) error {
			if key != "hot" {
				return fmt.Errorf("unknown parameter %q (histogram accepts \"hot\")", key)
			}
			b, err := paramBool(key, val)
			if err != nil {
				return err
			}
			hot.Store(b)
			return nil
		},
	}
}
