package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/dynfb/store"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of the first sample line whose name (and
// optional labels) match prefix exactly up to the last space.
func metricValue(t *testing.T, body, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok && name == prefix {
			return val
		}
	}
	t.Fatalf("metric %q not in scrape:\n%s", prefix, body)
	return ""
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, nil)

	body := scrape(t, ts.URL)
	// The scrape itself is a request, so the counter is already moving;
	// just pin the families that must exist before any workload.
	before := metricValue(t, body, "dfserved_requests_total")
	if !strings.Contains(body, "build_info{") {
		t.Error("no build_info in scrape")
	}
	if metricValue(t, body, "dfserved_runs_ok_total") != "0" {
		t.Error("runs counter nonzero before any run")
	}

	status, _ := postRun(t, ts.URL, `{"section":"sort","iters":20000}`)
	if status != http.StatusOK {
		t.Fatalf("run failed: status %d", status)
	}

	body = scrape(t, ts.URL)
	// The run incremented the request and success counters (the /metrics
	// scrape itself is also a request).
	if metricValue(t, body, "dfserved_runs_ok_total") != "1" {
		t.Error("runs_ok_total != 1 after one successful run")
	}
	if after := metricValue(t, body, "dfserved_requests_total"); after == before {
		t.Errorf("requests_total stuck at %s after traffic", after)
	}
	if metricValue(t, body, "dfserved_run_seconds_count") != "1" {
		t.Error("run_seconds histogram did not observe the run")
	}
	if !strings.Contains(body, `dfserved_section_switches{section="sort"}`) {
		t.Error("no per-section switch gauge")
	}
	if !strings.Contains(body, "dfserved_warm_start_hits_total 0") {
		t.Error("warm-start hits missing or nonzero on a cold server")
	}
}

func TestMetricsStoreLinkFamilies(t *testing.T) {
	// Only a replicated backend exposes the sync-link families.
	srv, err := New(Config{
		Workers:          1,
		TargetSampling:   time.Millisecond,
		TargetProduction: 50 * time.Millisecond,
		Backend:          store.NewMemStore(),
		Tenant:           "t1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if strings.Contains(scrape(t, ts.URL), "dfserved_store_connected") {
		t.Error("local backend advertises a hub link")
	}
}

func TestDrainMarksHealthz(t *testing.T) {
	srv, ts := testServer(t, store.NewMemStore())
	status, _ := postRun(t, ts.URL, `{"section":"sort","iters":20000}`)
	if status != http.StatusOK {
		t.Fatalf("run failed: status %d", status)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"draining"`) {
		t.Errorf("healthz after Close = %s, want draining status", body)
	}
}

// TestBackendBootWarmStart wires a Server to a shared Backend with tenant
// namespacing: knowledge a first server learned must warm-start a second
// one, and a third server under a different tenant must stay cold.
func TestBackendBootWarmStart(t *testing.T) {
	backend := store.NewMemStore()
	mk := func(tenant string) *Server {
		srv, err := New(Config{
			Workers:          2,
			TargetSampling:   time.Millisecond,
			TargetProduction: 50 * time.Millisecond,
			Backend:          backend,
			Tenant:           tenant,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	first := mk("alpha")
	ts := httptest.NewServer(first.Handler())
	defer ts.Close()
	status, _ := postRun(t, ts.URL, `{"section":"sort","iters":20000}`)
	if status != http.StatusOK {
		t.Fatalf("run failed: status %d", status)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second := mk("alpha")
	defer second.Close()
	if second.WarmStartHits() == 0 {
		t.Error("second server under the same tenant did not warm-start")
	}

	other := mk("beta")
	defer other.Close()
	if other.WarmStartHits() != 0 {
		t.Errorf("tenant beta warm-started from alpha's records (hits=%d)",
			other.WarmStartHits())
	}
}
