package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path        string
	Fset        *token.FileSet
	Files       []*ast.File
	Types       *types.Package
	TypesInfo   *types.Info
	Annotations *Annotations
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the patterns with `go list -export -deps -json`, parses the
// matched packages from source, and type-checks them against the compiler
// export data of their dependencies. It is a stdlib-only substitute for
// go/packages: `go list -export` compiles (or reuses from the build cache)
// every listed package's export file, and importer.ForCompiler reads those
// files back, so no analysis-time recompilation and no external module is
// needed. dir is the working directory for go list ("" means the current
// one).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			lp := lp
			targets = append(targets, &lp)
		}
	}

	fset := token.NewFileSet()
	// One importer for the whole load: every analyzed package resolves a
	// given dependency to the same *types.Package, so types compare
	// identical across passes.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range targets {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:        lp.ImportPath,
			Fset:        fset,
			Files:       files,
			Types:       pkg,
			TypesInfo:   info,
			Annotations: CollectAnnotations(fset, files),
		})
	}
	return pkgs, nil
}

// Check type-checks one package's parsed files with full types.Info maps.
// Shared by Load and the linttest harness.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
