// Package linttest is the golden-comment test harness for the dfvet
// analyzers, mirroring go/analysis/analysistest on the stdlib only.
//
// A test package lives under testdata/src/<name>; every file is parsed and
// type-checked (stdlib imports resolve through `go list -export` data),
// the analyzer runs with //dfvet:allow suppression applied — so
// suppression tests work exactly like production — and the findings are
// matched against want comments:
//
//	for k := range m { // want `feeds fmt.Println`
//
// Each backquoted or double-quoted string after "// want" is a regexp;
// the findings reported on that line must match the want patterns 1:1.
// A line with findings but no want comment, or a want pattern with no
// matching finding, fails the test.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// Run analyzes the test package in dir (e.g. "testdata/src/detorder") and
// reports any divergence from its want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("linttest: no Go files in %s (%v)", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			imports[p] = true
		}
	}

	imp := importer.ForCompiler(fset, "gc", exportLookup(t, imports))
	pkgPath := filepath.Base(dir)
	pkg, info, err := lint.Check(fset, pkgPath, files, imp)
	if err != nil {
		t.Fatalf("linttest: typecheck %s: %v", dir, err)
	}

	findings, err := lint.Run([]*lint.Package{{
		Path:        pkgPath,
		Fset:        fset,
		Files:       files,
		Types:       pkg,
		TypesInfo:   info,
		Annotations: lint.CollectAnnotations(fset, files),
	}}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	check(t, fset, files, findings)
}

type lineKey struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// check matches findings against want comments line by line.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, findings []lint.Finding) {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, rest, ok := strings.Cut(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	got := map[lineKey][]lint.Finding{}
	for _, f := range findings {
		k := lineKey{f.File, f.Line}
		got[k] = append(got[k], f)
	}

	for k, res := range wants {
		fs := got[k]
		if len(fs) != len(res) {
			t.Errorf("%s:%d: %d findings, want %d:%s", k.file, k.line, len(fs), len(res), renderAll(fs))
			continue
		}
		for _, re := range res {
			matched := false
			for _, f := range fs {
				if re.MatchString(f.Message) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no finding matches want %q:%s", k.file, k.line, re, renderAll(fs))
			}
		}
	}
	for k, fs := range got {
		if _, ok := wants[k]; !ok {
			t.Errorf("%s:%d: unexpected findings:%s", k.file, k.line, renderAll(fs))
		}
	}
}

func renderAll(fs []lint.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "\n\t%s", f)
	}
	return b.String()
}

// Export-data lookup for testdata imports (stdlib only). Resolved paths
// are cached process-wide; `go list` runs once per distinct import set
// miss.
var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{}
)

func exportLookup(t *testing.T, imports map[string]bool) func(string) (io.ReadCloser, error) {
	t.Helper()
	var missing []string
	exportMu.Lock()
	for p := range imports {
		if _, ok := exportFiles[p]; !ok {
			missing = append(missing, p)
		}
	}
	exportMu.Unlock()
	if len(missing) > 0 {
		sort.Strings(missing)
		listExports(t, missing)
	}
	return func(path string) (io.ReadCloser, error) {
		exportMu.Lock()
		file, ok := exportFiles[path]
		exportMu.Unlock()
		if !ok {
			// A transitive dependency not listed yet: resolve it now.
			listExports(t, []string{path})
			exportMu.Lock()
			file, ok = exportFiles[path]
			exportMu.Unlock()
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
		}
		return os.Open(file)
	}
}

func listExports(t *testing.T, paths []string) {
	t.Helper()
	args := append([]string{"list", "-export", "-deps", "-json"}, paths...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go list %v: %v\n%s", paths, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	exportMu.Lock()
	defer exportMu.Unlock()
	for {
		var lp struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("go list: %v", err)
		}
		if lp.Export != "" {
			exportFiles[lp.ImportPath] = lp.Export
		}
	}
}
