// The noalloc corpus: an annotated hot path with every flagged construct
// (the seeded allocating-hot-path mutants), exempt terminal paths, line
// suppression, and an unannotated function that may allocate freely.
package noalloc

import "fmt"

type item struct {
	k string
	v int
}

//dfvet:noalloc
func hot(xs []int, n int) int {
	xs = append(xs, n)           // want `append allocates`
	buf := make([]int, n)        // want `make allocates`
	p := new(item)               // want `new allocates`
	it := &item{k: "x"}          // want `&composite literal allocates`
	ys := []int{1, 2, 3}         // want `slice literal allocates`
	m := map[string]int{}        // want `map literal allocates`
	f := func() int { return n } // want `function literal allocates its closure`
	s := "a" + fmt.Sprint(n)     // want `string concatenation allocates` `variadic interface call boxes its arguments`
	b := []byte(s)               // want `conversion between string and slice copies`
	return len(xs) + len(buf) + p.v + it.v + len(ys) + len(m) + f() + len(b)
}

//dfvet:noalloc
func hotAllowed(xs []int, n int) []int {
	return append(xs, n) //dfvet:allow noalloc amortized: backing array reaches steady capacity
}

//dfvet:noalloc
func terminal(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // exempt: panic argument
	}
	if n > 1<<20 {
		fail("oversized %d", n) // exempt: noreturn helper
	}
	return n * 2
}

// fail never returns; calls to it are terminal paths like panic itself.
func fail(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

// cold is unannotated: allocation is fine here.
func cold(n int) []int {
	return make([]int, n)
}
