// Package noalloc checks functions annotated //dfvet:noalloc for
// allocating constructs.
//
// The simulated machine's steady-state hot paths (event dispatch, lock
// handoff, barrier rendezvous) and the interpreter/VM dispatch loops are
// required to be allocation-free: a single alloc per simulated event turns
// into GC pressure that distorts every benchmark in the repo. The runtime
// side of this contract is the allocs-per-op gates
// (TestSteadyStateAllocsPerEvent and friends); this analyzer is the static
// side, so a regression is caught by `dfvet` at review time, not by a
// benchmark run later. TestNoallocAnnotationCoverage ties the two sides
// together: every annotated hot path must sit under a runtime gate.
//
// Flagged constructs: composite literals of slice/map type, &T{...},
// new/make/append, closures, string concatenation, string<->[]byte/[]rune
// conversions, and calls through variadic ...interface{} parameters
// (which box their arguments). Arguments of panic(...) are exempt —
// a terminal path's allocation cost is irrelevant. A deliberate cold-path
// allocation (e.g. building a deadlock report before returning an error)
// is annotated //dfvet:allow noalloc <reason> on its line.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "noalloc",
	Doc:  "allocating construct in a function annotated //dfvet:noalloc",
	Run:  run,
}

func run(pass *lint.Pass) error {
	noreturn := collectNoreturn(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			for _, d := range lint.Directives(pass.Fset, fn.Doc) {
				if d.Verb == "noalloc" {
					checkFunc(pass, fn, noreturn)
					break
				}
			}
		}
	}
	return nil
}

// collectNoreturn finds same-package functions that cannot return — their
// body's last statement is a panic call (rt.fail-style terminal helpers).
// Calls to them are terminal paths, exempt exactly like panic itself.
func collectNoreturn(pass *lint.Pass) map[*types.Func]bool {
	noreturn := map[*types.Func]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || len(fn.Body.List) == 0 {
				continue
			}
			last, ok := fn.Body.List[len(fn.Body.List)-1].(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := last.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
					if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
						noreturn[obj] = true
					}
				}
			}
		}
	}
	return noreturn
}

func checkFunc(pass *lint.Pass, fn *ast.FuncDecl, noreturn map[*types.Func]bool) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "%s literal allocates in //dfvet:noalloc function %s", kindName(t), fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in //dfvet:noalloc function %s", fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal allocates its closure in //dfvet:noalloc function %s", fn.Name.Name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypesInfo.TypeOf(n); t != nil && isString(t) {
					pass.Reportf(n.Pos(), "string concatenation allocates in //dfvet:noalloc function %s", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			return checkCall(pass, fn, n, noreturn)
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// checkCall flags allocating calls; returns false to prune the walk below
// exempt subtrees (arguments of panic and of noreturn helpers).
func checkCall(pass *lint.Pass, fn *ast.FuncDecl, call *ast.CallExpr, noreturn map[*types.Func]bool) bool {
	fun := ast.Unparen(call.Fun)

	// Builtins and panic.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok {
			switch id.Name {
			case "panic":
				return false // terminal path: its allocations don't count
			case "new", "make", "append":
				pass.Reportf(call.Pos(), "%s allocates in //dfvet:noalloc function %s", id.Name, fn.Name.Name)
				return true
			}
			return true
		}
	}

	// Calls to panicking helpers are terminal paths too.
	if callee := calleeFunc(pass, fun); callee != nil && noreturn[callee] {
		return false
	}

	// Conversions: string <-> []byte/[]rune copy their operand.
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		from := pass.TypesInfo.TypeOf(call.Args[0])
		if from != nil &&
			(isString(to) && isByteRuneSlice(from) || isByteRuneSlice(to) && isString(from)) {
			pass.Reportf(call.Pos(), "conversion between string and slice copies in //dfvet:noalloc function %s", fn.Name.Name)
		}
		return true
	}

	// Calls through variadic ...interface{} parameters box every argument
	// (fmt.Errorf, fmt.Sprintf, ...).
	if sig, ok := typeOfCallee(pass, fun); ok && sig.Variadic() && len(call.Args) >= sig.Params().Len() {
		last := sig.Params().At(sig.Params().Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			if _, isIface := sl.Elem().Underlying().(*types.Interface); isIface && len(call.Args) > sig.Params().Len()-1 && !call.Ellipsis.IsValid() {
				pass.Reportf(call.Pos(), "variadic interface call boxes its arguments in //dfvet:noalloc function %s", fn.Name.Name)
			}
		}
	}
	return true
}

// calleeFunc resolves a call's callee to its function object, through
// either a bare identifier or a selector (method or qualified name).
func calleeFunc(pass *lint.Pass, fun ast.Expr) *types.Func {
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	f, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return f
}

func typeOfCallee(pass *lint.Pass, fun ast.Expr) (*types.Signature, bool) {
	t := pass.TypesInfo.TypeOf(fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
