package lint_test

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		verb string
		args []string
		ok   bool
	}{
		{"//dfvet:allow walltime test seed", "allow", []string{"walltime", "test", "seed"}, true},
		{"//dfvet:noalloc", "noalloc", nil, true},
		{"//dfvet:fingerprint Options simmach.Config", "fingerprint", []string{"Options", "simmach.Config"}, true},
		{"// dfvet:allow walltime x", "", nil, false}, // space breaks the directive, like go:build
		{"// ordinary comment", "", nil, false},
		{"//dfvet:", "", nil, false},
	}
	for _, c := range cases {
		verb, args, ok := lint.ParseDirective(c.text)
		if ok != c.ok || verb != c.verb || strings.Join(args, " ") != strings.Join(c.args, " ") {
			t.Errorf("ParseDirective(%q) = %q %v %v, want %q %v %v", c.text, verb, args, ok, c.verb, c.args, c.ok)
		}
	}
}

func TestAllowSuppression(t *testing.T) {
	src := `package p

func f() {
	//dfvet:allow walltime
	_ = 1
	//dfvet:allow walltime justified because reasons
	_ = 2
	_ = 3 //dfvet:allow walltime same-line form works too
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ann := lint.CollectAnnotations(fset, []*ast.File{f})
	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	if ann.Allowed("walltime", at(5)) {
		t.Error("bare allow without a reason suppressed a finding")
	}
	if !ann.Allowed("walltime", at(7)) {
		t.Error("allow with a reason on the line above did not suppress")
	}
	if !ann.Allowed("walltime", at(8)) {
		t.Error("same-line allow did not suppress")
	}
	if ann.Allowed("detorder", at(7)) {
		t.Error("allow for walltime suppressed a detorder finding")
	}
}

func TestSARIFShape(t *testing.T) {
	findings := []lint.Finding{{
		Analyzer: "walltime",
		File:     "/repo/internal/simmach/simmach.go",
		Line:     10,
		Column:   3,
		Message:  "time.Now in package simmach",
	}}
	analyzers := []*lint.Analyzer{
		{Name: "walltime", Doc: "wall-clock check"},
		{Name: "detorder", Doc: "map order check"},
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, findings, analyzers, "/repo"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dfvet" || len(run.Tool.Driver.Rules) != 2 {
		t.Errorf("driver = %q with %d rules, want dfvet with 2", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	res := run.Results[0]
	if res.RuleID != "walltime" {
		t.Errorf("ruleId = %q", res.RuleID)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/simmach/simmach.go" || loc.Region.StartLine != 10 {
		t.Errorf("location = %q:%d, want repo-relative internal/simmach/simmach.go:10", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}

// TestLoadTypechecks smoke-tests the export-data loader on a real package
// of this module.
func TestLoadTypechecks(t *testing.T) {
	pkgs, err := lint.Load("", "repro/internal/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Types == nil || len(pkgs[0].Files) == 0 {
		t.Fatalf("Load = %+v, want one type-checked package", pkgs)
	}
	if pkgs[0].Types.Scope().Lookup("Registry") == nil {
		t.Error("loaded metrics package has no Registry in scope")
	}
}
