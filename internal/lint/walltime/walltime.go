// Package walltime forbids unannotated wall-clock time and ambient
// randomness in the repo's time-sensitive packages.
//
// The simulated machine (simmach), the interpreter and VM (interp), the
// perturbation schedules (perturb), the feedback controller (core), and
// the simulation cache (simcache) are deterministic by contract: the same
// program and options produce byte-identical results, which is what makes
// content-addressed caching, golden tests, and the differential harnesses
// sound. A single time.Now or math/rand call breaks that silently, so in
// those packages every wall-clock site is a finding.
//
// The serving tier (serve, fleet, simsample) legitimately reads the wall
// clock — live uptime, request pacing, wall-vs-virtual comparisons — but
// each site must say so with //dfvet:allow walltime <reason>, so a stray
// wall-clock dependency cannot creep into a measurement path unannounced.
package walltime

import (
	"go/ast"
	"go/types"
	"path"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "walltime",
	Doc:  "wall-clock time or ambient randomness in a deterministic or annotation-required package",
	Run:  run,
}

// deterministic names the packages under the hard determinism contract,
// by import-path base; justified names the serving-tier packages where
// wall-clock use is legal but must be annotated.
var deterministic = map[string]bool{
	"simmach":  true,
	"interp":   true,
	"perturb":  true,
	"core":     true,
	"simcache": true,
}

var justified = map[string]bool{
	"serve":     true,
	"fleet":     true,
	"simsample": true,
}

// forbiddenTime lists the wall-clock functions of package time. Everything
// else in time (Duration arithmetic, formatting) is pure and allowed.
var forbiddenTime = map[string]bool{
	"Now":      true,
	"Since":    true,
	"Until":    true,
	"Sleep":    true,
	"After":    true,
	"Tick":     true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func run(pass *lint.Pass) error {
	base := path.Base(pass.Pkg.Path())
	if !deterministic[base] && !justified[base] {
		return nil
	}
	contract := "results must not depend on wall-clock time"
	if justified[base] {
		contract = "wall-clock use here requires a justification"
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if _, isFunc := obj.(*types.Func); isFunc && forbiddenTime[obj.Name()] {
					pass.Reportf(id.Pos(),
						"time.%s in package %s: %s (annotate //dfvet:allow walltime if legitimate)",
						obj.Name(), pass.Pkg.Name(), contract)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(id.Pos(),
					"%s.%s in package %s: ambient randomness; %s (annotate //dfvet:allow walltime if legitimate)",
					obj.Pkg().Path(), obj.Name(), pass.Pkg.Name(), contract)
			}
			return true
		})
	}
	return nil
}
