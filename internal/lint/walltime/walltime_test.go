package walltime_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/walltime"
)

// TestWalltimeDeterministic checks the corpus posing as the deterministic
// package simmach; TestWalltimeUnchecked checks that a package outside the
// checked sets is ignored entirely.
func TestWalltimeDeterministic(t *testing.T) {
	linttest.Run(t, walltime.Analyzer, "testdata/src/simmach")
}

func TestWalltimeUnchecked(t *testing.T) {
	linttest.Run(t, walltime.Analyzer, "testdata/src/other")
}
