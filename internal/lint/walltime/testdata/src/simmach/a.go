// The walltime corpus, posing as the deterministic package simmach (the
// analyzer selects packages by import-path base): seeded wall-clock and
// randomness regressions, pure time arithmetic, and annotated suppression.
package simmach

import (
	"math/rand"
	"time"
)

// Seeded regression: wall-clock stamp in a deterministic package.
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in package simmach`
}

// Seeded regression: measuring with the wall clock.
func measure(f func()) time.Duration {
	start := time.Now() // want `time.Now in package simmach`
	f()
	return time.Since(start) // want `time.Since in package simmach`
}

// Seeded regression: ambient randomness.
func jitter() int {
	return rand.Intn(100) // want `math/rand.Intn in package simmach`
}

// Legal: pure duration arithmetic, no clock read.
func timeout(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// Suppressed: a justified wall-clock read.
func seed() int64 {
	return time.Now().UnixNano() //dfvet:allow walltime test fixture seed; never reaches a simulation result
}
