// A package outside both the deterministic set and the serving tier:
// wall-clock use is unrestricted, so nothing here is flagged.
package other

import "time"

func stamp() int64 {
	return time.Now().UnixNano()
}
