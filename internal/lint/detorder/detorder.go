// Package detorder reports map iterations that feed order-sensitive sinks.
//
// Go's map iteration order is deliberately randomized, but large parts of
// this repo promise deterministic output: canonical fingerprints, golden
// files, rendered reports, replicated policy stores. A `for k := range m`
// whose body prints, writes, encodes, or accumulates into an outer slice
// that is never sorted afterwards makes that output depend on iteration
// order. The fix is to sort the keys first (or sort the accumulated slice
// after the loop); a deliberate unordered use is annotated
// //dfvet:allow detorder <reason>.
package detorder

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "detorder",
	Doc:  "map iteration feeds an order-sensitive sink (output, encoding, or an unsorted accumulator)",
	Run:  run,
}

// Order-sensitive callee names. Package functions are matched as
// pkg.Name (fmt.Println); methods by bare name on any receiver
// (w.WriteString, enc.Encode, h.Write).
var sinkFuncs = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// isSortCall reports calls that launder iteration order: anything from
// package sort or slices, or a helper whose own name says it sorts
// (sortKeys, SortDiags, ...). A call to one of these with the accumulator
// among its arguments, after the range loop, clears the finding.
func isSortCall(pass *lint.Pass, call *ast.CallExpr) bool {
	name := calleeName(pass, call)
	if strings.HasPrefix(name, "sort.") || strings.HasPrefix(name, "slices.Sort") {
		return true
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return strings.HasPrefix(name, "sort") || strings.HasPrefix(name, "Sort")
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkBody(pass, fn.Body)
			return false
		})
	}
	return nil
}

// checkBody scans one function body (including nested literals) for map
// range statements and validates each.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

func checkMapRange(pass *lint.Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt) {
	// Direct sinks inside the body: anything written out during the loop
	// is emitted in iteration order.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(pass, call)
		if sinkFuncs[name] || sinkMethods[name] {
			pass.Reportf(rng.Pos(),
				"iteration over map feeds %s in nondeterministic order; iterate sorted keys or annotate //dfvet:allow detorder", name)
			return false
		}
		return true
	})

	// Accumulators: v = append(v, ...) onto a variable declared outside
	// the loop, with no later sort of v in the enclosing body.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || calleeName(pass, call) != "append" {
			return true
		}
		ident, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(ident)
		if obj == nil || obj.Pos() >= rng.Pos() {
			return true // loop-local accumulator: its order never escapes the iteration
		}
		if sortedAfter(pass, enclosing, rng, obj) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"iteration over map appends to %s in nondeterministic order and %s is never sorted afterwards; sort it or annotate //dfvet:allow detorder", ident.Name, ident.Name)
		return false
	})
}

// sortedAfter reports whether obj is passed to a sort call after the range
// statement inside the enclosing body.
func sortedAfter(pass *lint.Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
			if found {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// calleeName renders a call's callee as "pkg.Func" for package functions,
// the bare method name for method calls, and the builtin name for
// builtins; "" when unresolvable.
func calleeName(pass *lint.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(fun); obj != nil {
			if _, ok := obj.(*types.Builtin); ok {
				return fun.Name
			}
		}
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName); ok {
				return pkg.Imported().Name() + "." + fun.Sel.Name
			}
		}
		return fun.Sel.Name
	}
	return ""
}
