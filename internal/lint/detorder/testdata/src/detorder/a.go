// The detorder corpus: seeded map-order regressions (the mutants the
// analyzer must catch), legal sorted patterns, and annotated suppression.
package detorder

import (
	"fmt"
	"sort"
)

// Seeded regression: printing during map iteration.
func printAll(m map[string]int) {
	for k, v := range m { // want `feeds fmt.Println in nondeterministic order`
		fmt.Println(k, v)
	}
}

// Seeded regression: accumulating keys without a sort.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys in nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

// Legal: the canonical sorted-keys idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Legal: sorted through a helper whose name says it sorts.
func helperSortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(keys []string) { sort.Strings(keys) }

// Legal: a pure order-insensitive fold.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Legal: loop-local accumulator; its order never escapes the iteration.
func localAccum(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// Suppressed: deliberate unordered dump, justified.
func debugDump(m map[string]int) {
	//dfvet:allow detorder debug dump; consumer is a human, order irrelevant
	for k, v := range m {
		fmt.Println(k, v)
	}
}
