package detorder_test

import (
	"testing"

	"repro/internal/lint/detorder"
	"repro/internal/lint/linttest"
)

func TestDetorder(t *testing.T) {
	linttest.Run(t, detorder.Analyzer, "testdata/src/detorder")
}
