package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders findings one per line in the familiar
// file:line:col: analyzer: message form.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as one indented JSON array.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
