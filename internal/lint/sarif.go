package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 output, the static-analysis interchange format CI systems
// ingest for code-scanning annotations. Only the slice of the schema dfvet
// produces is modeled here.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as one SARIF 2.1.0 run of the dfvet driver.
// Rules are declared for every analyzer in the suite (found or not), so a
// clean run still advertises what was checked. File URIs are made relative
// to root when possible.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.File
		if root != "" {
			if rel, err := filepath.Rel(root, f.File); err == nil && !filepath.IsAbs(rel) && !isParentRel(rel) {
				uri = filepath.ToSlash(rel)
			}
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "dfvet",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func isParentRel(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
