package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// NoallocFuncs parses the non-test Go sources of the package in dir and
// returns the receiver-qualified name (Type.Method, or the bare name for
// plain functions) of every function annotated //dfvet:noalloc, sorted.
//
// This is the bridge between the static and dynamic allocation gates: a
// package with annotated hot paths keeps a coverage test that asserts
// NoallocFuncs against the exact set its steady-state allocs/op test
// exercises, so adding or removing an annotation without updating the
// runtime gate (or vice versa) fails the build instead of silently
// letting the two drift apart.
func NoallocFuncs(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, d := range Directives(fset, fn.Doc) {
				if d.Verb == "noalloc" {
					names = append(names, funcDisplayName(fn))
					break
				}
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// funcDisplayName renders Type.Method for methods (stripping the
// receiver's pointer star) and the bare name for functions.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}
