// Package fingerprint checks that canonical fingerprint/cache-key encoders
// stay in sync with the structs they encode.
//
// The repo's caching and replication layers are content-addressed: a
// simulation outcome is keyed by an exhaustive encoding of everything that
// can influence it (interp.CacheKey over Options and the machine Config,
// perturb's AppendCanonical over Schedule). The classic failure mode is
// silent: someone adds an Options field that changes behavior, forgets the
// encoder, and stale cache entries start answering for runs they do not
// match. This analyzer makes the contract explicit:
//
//	//dfvet:fingerprint <Type> [<Type>...]
//
// on an encoder function declares it the canonical encoder of those struct
// types (qualified names reach imported packages). Every exported-or-not
// field of each named type must then either be consumed — referenced
// through a selector in the encoder or in any same-package function it
// transitively calls — or be explicitly excluded:
//
//	//dfvet:fingerprint-exclude <Type>.<Field> — <reason>   (on the encoder's doc)
//	//dfvet:fingerprint-exclude <reason>                    (on the field's line)
//
// A stale exclusion (the field is in fact consumed) is also reported, so
// the exclusion list cannot rot.
package fingerprint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "fingerprint",
	Doc:  "struct field neither consumed by its canonical fingerprint encoder nor explicitly excluded",
	Run:  run,
}

func run(pass *lint.Pass) error {
	// Index this package's function bodies so consumption can follow
	// same-package calls.
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				bodies[obj] = fn
			}
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var targets []string
			excluded := map[string]bool{} // "Type.Field" as written in the directive
			for _, d := range lint.Directives(pass.Fset, fn.Doc) {
				switch d.Verb {
				case "fingerprint":
					targets = append(targets, d.Args...)
				case "fingerprint-exclude":
					if len(d.Args) >= 2 && strings.Contains(d.Args[0], ".") {
						excluded[d.Args[0]] = true
					}
				}
			}
			if len(targets) > 0 {
				checkEncoder(pass, bodies, fn, targets, excluded)
			}
		}
	}
	return nil
}

func checkEncoder(pass *lint.Pass, bodies map[*types.Func]*ast.FuncDecl, fn *ast.FuncDecl, targets []string, excluded map[string]bool) {
	structs := map[string]*types.Struct{}
	targetSet := map[*types.Struct]bool{}
	for _, spec := range targets {
		st, err := resolveStruct(pass, spec)
		if err != nil {
			pass.Reportf(fn.Pos(), "//dfvet:fingerprint %s: %v", spec, err)
			continue
		}
		structs[spec] = st
		targetSet[st] = true
	}
	consumed := consumedFields(pass, bodies, fn, targetSet)
	for _, spec := range targets {
		st := structs[spec]
		if st == nil {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			key := spec + "." + field.Name()
			switch {
			case consumed[field]:
				if excluded[key] || fieldLineExcluded(pass, field) {
					pass.Reportf(fn.Pos(), "stale exclusion: field %s is consumed by %s; drop the //dfvet:fingerprint-exclude", key, fn.Name.Name)
				}
			case excluded[key], fieldLineExcluded(pass, field):
				// intentionally outside the fingerprint
			default:
				pass.Reportf(fn.Pos(), "field %s is not consumed by fingerprint encoder %s and not excluded; encode it (and bump the key version) or add //dfvet:fingerprint-exclude %s <reason>",
					key, fn.Name.Name, key)
			}
		}
	}
}

// resolveStruct resolves a directive type spec ("Options" in the package
// scope, "simmach.Config" through the package's imports) to its struct
// type.
func resolveStruct(pass *lint.Pass, spec string) (*types.Struct, error) {
	scope := pass.Pkg.Scope()
	name := spec
	if pkgName, typeName, ok := strings.Cut(spec, "."); ok {
		var imported *types.Package
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				imported = imp
				break
			}
		}
		if imported == nil {
			return nil, fmt.Errorf("package %s is not imported", pkgName)
		}
		scope, name = imported.Scope(), typeName
	}
	obj := scope.Lookup(name)
	if obj == nil {
		return nil, fmt.Errorf("type %s not found", name)
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, fmt.Errorf("%s is not a struct type", spec)
	}
	return st, nil
}

// consumedFields collects every struct field object referenced through a
// selector in fn's body or in any same-package function it transitively
// calls. Methods of a target type itself are not followed as callees:
// canonicalizers like withDefaults touch every field to default it, and a
// field that is only defaulted but never encoded must still be flagged.
// (The annotated root is always walked, so annotating the canonicalizer
// itself still works.)
func consumedFields(pass *lint.Pass, bodies map[*types.Func]*ast.FuncDecl, fn *ast.FuncDecl, targetSet map[*types.Struct]bool) map[*types.Var]bool {
	consumed := map[*types.Var]bool{}
	seen := map[*ast.FuncDecl]bool{}
	var visit func(*ast.FuncDecl)
	visit = func(f *ast.FuncDecl) {
		if seen[f] {
			return
		}
		seen[f] = true
		if f != fn && receiverIsTarget(pass, f, targetSet) {
			return
		}
		ast.Inspect(f.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						consumed[v] = true
					}
				}
			case *ast.Ident:
				if callee, ok := pass.TypesInfo.Uses[n].(*types.Func); ok {
					if decl, ok := bodies[callee]; ok {
						visit(decl)
					}
				}
			}
			return true
		})
	}
	visit(fn)
	return consumed
}

// receiverIsTarget reports whether f is a method whose receiver's
// underlying struct is one of the encoder's target types.
func receiverIsTarget(pass *lint.Pass, f *ast.FuncDecl, targetSet map[*types.Struct]bool) bool {
	if f.Recv == nil || len(f.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(f.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return ok && targetSet[st]
}

// fieldLineExcluded reports a field-level //dfvet:fingerprint-exclude on
// the field's own line or the line above it (its doc comment). Only
// resolvable for fields declared in the analyzed package's files.
func fieldLineExcluded(pass *lint.Pass, field *types.Var) bool {
	pos := pass.Fset.Position(field.Pos())
	if pos.Filename == "" {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range pass.Annotations.At(pos.Filename, line) {
			if d.Verb == "fingerprint-exclude" && len(d.Args) >= 1 {
				return true
			}
		}
	}
	return false
}
