// The fingerprint corpus: an Options-style struct with a canonical
// encoder, a seeded unfingerprinted-field mutant, doc-level and
// field-level exclusions, a defaulting canonicalizer that must NOT count
// as consumption, and a stale exclusion.
package fingerprint

import "fmt"

type Options struct {
	Procs  int
	Policy string
	// Debug is the seeded mutant: it changes behavior but the encoder
	// below forgets it, and no exclusion covers it.
	Debug bool
	// Trace is excluded at the encoder (doc-level form).
	Trace func()
	// Label is excluded at the field (field-level form).
	//dfvet:fingerprint-exclude cosmetic label; never affects a run
	Label string
	// Retries is only touched by withDefaults; defaulting is not
	// encoding, so the encoder must still be flagged for it.
	Retries int
}

// withDefaults is a canonicalizer of the target type: the analyzer must
// not treat the fields it touches as consumed by Key.
func (o Options) withDefaults() Options {
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Debug {
		o.Label = "debug"
	}
	return o
}

// Key is the canonical encoder of Options.
//
//dfvet:fingerprint Options
//dfvet:fingerprint-exclude Options.Trace — side-effect callback; traced runs are never cached
func Key(o Options) string { // want `field Options.Debug is not consumed by fingerprint encoder Key` `field Options.Retries is not consumed by fingerprint encoder Key`
	o = o.withDefaults()
	return fmt.Sprintf("%d|%s", o.Procs, o.Policy)
}

type Spec struct {
	Window int
	Gap    int
}

// SpecKey consumes every Spec field, including Gap through the helper, so
// the doc-level exclusion of Spec.Gap is stale and must be reported.
//
//dfvet:fingerprint Spec
//dfvet:fingerprint-exclude Spec.Gap — stale: the helper encodes it
func SpecKey(s Spec) string { // want `stale exclusion: field Spec.Gap is consumed by SpecKey`
	return fmt.Sprintf("%d|%s", s.Window, gapPart(s))
}

// gapPart is a plain helper (not a Spec method), so its field reads count
// as consumption by SpecKey.
func gapPart(s Spec) string {
	return fmt.Sprint(s.Gap)
}

// badTarget names a type that does not exist.
//
//dfvet:fingerprint NoSuchType
func badTarget() string { // want `type NoSuchType not found`
	return ""
}
