package fingerprint_test

import (
	"testing"

	"repro/internal/lint/fingerprint"
	"repro/internal/lint/linttest"
)

func TestFingerprint(t *testing.T) {
	linttest.Run(t, fingerprint.Analyzer, "testdata/src/fingerprint")
}
