// Package lint is the dfvet analysis framework: a small, self-contained
// mirror of the golang.org/x/tools/go/analysis API built on the standard
// library only. Packages are loaded from compiler export data (go list
// -export), so analyzers get full type information without any external
// module. The framework adds the repo's //dfvet: annotation grammar
// (annot.go) and text/JSON/SARIF renderers (render.go, sarif.go); the
// project-specific analyzers live in the subpackages detorder, walltime,
// noalloc, and fingerprint, and cmd/dfvet drives them all.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. Run inspects a single package through its
// Pass and reports findings via pass.Report; the framework handles
// suppression, ordering, and rendering.
type Analyzer struct {
	// Name identifies the analyzer in output, SARIF rules, and
	// //dfvet:allow annotations. Lower-case, no spaces.
	Name string
	// Doc is a one-line description (first sentence is the SARIF rule
	// short description).
	Doc string
	// Run analyzes one package.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer    *Analyzer
	Fset        *token.FileSet
	Files       []*ast.File
	Pkg         *types.Package
	TypesInfo   *types.Info
	Annotations *Annotations

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// A Diagnostic is one finding inside a package, positioned by token.Pos.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a rendered diagnostic: analyzer identity plus resolved
// position, ready for output. Findings are what Run returns and what the
// renderers consume.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. A finding is suppressed when the flagged
// line (or the line directly above it) carries a matching
// "//dfvet:allow <analyzer> <reason>" annotation.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				Annotations: pkg.Annotations,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if pkg.Annotations.Allowed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pos,
					File:     pos.Filename,
					Line:     pos.Line,
					Column:   pos.Column,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
