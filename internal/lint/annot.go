package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //dfvet: annotation grammar (docs/analysis.md has the full
// reference):
//
//	//dfvet:allow <analyzer> <reason>
//	    Suppresses <analyzer> findings on the annotated line. Valid on the
//	    flagged line itself or on the line directly above it. The reason is
//	    required; a bare allow suppresses nothing.
//
//	//dfvet:noalloc
//	    On a function's doc comment: the function body must not allocate
//	    (checked statically by the noalloc analyzer and mirrored at runtime
//	    by the allocs-per-op gates).
//
//	//dfvet:fingerprint <Type> [<Type>...]
//	    On a function's doc comment: the function is the canonical
//	    fingerprint/cache-key encoder for the named struct types. Types are
//	    resolved in the annotated package's scope; qualified names
//	    (pkg.Type) reach imported packages.
//
//	//dfvet:fingerprint-exclude <Type>.<Field> — <reason>
//	    On an encoder's doc comment: the named field is intentionally not
//	    part of the fingerprint.
//
//	//dfvet:fingerprint-exclude <reason>
//	    On a struct field's line (same package as the struct): equivalent
//	    field-level form.

// A Directive is one parsed //dfvet: annotation.
type Directive struct {
	Pos  token.Position
	Verb string   // "allow", "noalloc", "fingerprint", "fingerprint-exclude"
	Args []string // whitespace-split remainder
}

const directivePrefix = "//dfvet:"

// ParseDirective parses one comment line; ok is false for ordinary
// comments.
func ParseDirective(text string) (verb string, args []string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", nil, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
	if len(fields) == 0 {
		return "", nil, false
	}
	return fields[0], fields[1:], true
}

// Directives extracts the //dfvet: annotations from a doc comment group.
func Directives(fset *token.FileSet, doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var ds []Directive
	for _, c := range doc.List {
		if verb, args, ok := ParseDirective(c.Text); ok {
			ds = append(ds, Directive{Pos: fset.Position(c.Pos()), Verb: verb, Args: args})
		}
	}
	return ds
}

// Annotations indexes every //dfvet: directive of a package by file and
// line, so suppression checks and field-level annotations are O(1).
type Annotations struct {
	byLine map[string]map[int][]Directive
}

// CollectAnnotations scans all comments of the files (parsed with
// parser.ParseComments) for //dfvet: directives.
func CollectAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{byLine: map[string]map[int][]Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, args, ok := ParseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := a.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]Directive{}
					a.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], Directive{Pos: pos, Verb: verb, Args: args})
			}
		}
	}
	return a
}

// At returns the directives on one source line.
func (a *Annotations) At(file string, line int) []Directive {
	return a.byLine[file][line]
}

// Allowed reports whether a finding by the named analyzer at pos is
// suppressed by an "allow" directive with a reason, on the finding's line
// or the line directly above.
func (a *Annotations) Allowed(analyzer string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range a.At(pos.Filename, line) {
			if d.Verb == "allow" && len(d.Args) >= 2 && d.Args[0] == analyzer {
				return true
			}
		}
	}
	return false
}
