package fleet

import (
	"context"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestRunDemo runs the full fleet scenario in-process: cold discovery,
// live warm start, boot warm start, tenant isolation, metrics scrapes,
// and clean drains. It is the same path cmd/dfload and the CI smoke job
// exercise.
func TestRunDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet demo drives real load; skipped in -short")
	}
	dir := t.TempDir()
	report, err := RunDemo(context.Background(), DemoConfig{
		Replicas:   3,
		Section:    "sort",
		Iters:      2000,
		QPS:        100,
		Duration:   20 * time.Second, // per-phase bound; convergence ends phases early
		Sampling:   2 * time.Millisecond,
		Production: 300 * time.Millisecond,
		MetricsDir: dir,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatalf("RunDemo: %v (report %+v)", err, report)
	}
	if len(report.Replicas) != 3 {
		t.Fatalf("got %d replica reports, want 3", len(report.Replicas))
	}
	cold := report.Replicas[0]
	if cold.WarmStartHits != 0 {
		t.Errorf("cold replica warm-started (hits=%d)", cold.WarmStartHits)
	}
	if cold.Winner == "" {
		t.Error("cold replica has no winner")
	}
	for _, rr := range report.Replicas[1:] {
		if rr.WarmStartHits == 0 {
			t.Errorf("replica %s: no warm-start hits", rr.Name)
		}
		if rr.Winner != cold.Winner {
			t.Errorf("replica %s: winner %q, fleet winner %q", rr.Name, rr.Winner, cold.Winner)
		}
		if rr.SampledAtWinner >= cold.SampledAtWinner {
			t.Errorf("replica %s: sampled %d intervals, cold sampled %d — warm start bought nothing",
				rr.Name, rr.SampledAtWinner, cold.SampledAtWinner)
		}
	}
	if report.Isolated.WarmStartHits != 0 {
		t.Errorf("off-tenant replica warm-started (hits=%d)", report.Isolated.WarmStartHits)
	}

	// The scrapes must exist and carry the fleet's evidence.
	for _, name := range []string{"hub", "replica-1", "replica-2", "replica-3", "isolated"} {
		body, err := os.ReadFile(filepath.Join(dir, name+".prom"))
		if err != nil {
			t.Fatalf("missing metrics scrape: %v", err)
		}
		if name == "hub" {
			if !strings.Contains(string(body), "dfstored_pushes_total") {
				t.Errorf("hub scrape lacks dfstored_pushes_total")
			}
			continue
		}
		if !strings.Contains(string(body), "dfserved_warm_start_hits_total") {
			t.Errorf("%s scrape lacks dfserved_warm_start_hits_total", name)
		}
	}
}

// TestDriveAgainstReplica exercises the external-target mode: a lone
// replica with no hub, driven directly.
func TestDriveAgainstReplica(t *testing.T) {
	r, err := StartReplica(ReplicaConfig{
		Name:           "solo",
		Workers:        2,
		TargetSampling: 2 * time.Millisecond,
		Logger:         quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		if err := r.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	rep := Drive(context.Background(), r.URL, LoadConfig{
		Section: "sort", Iters: 1000, QPS: 200, Duration: 2 * time.Second,
		Until: func() bool {
			p, err := Probe(context.Background(), r.URL)
			return err == nil && p.Sections["sort"].Winner != ""
		},
	})
	if rep.Requests == 0 {
		t.Fatal("no requests sent")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d/%d requests failed", rep.Errors, rep.Requests)
	}
	p, err := Probe(context.Background(), r.URL)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sections["sort"].Winner == "" {
		t.Error("no winner after sustained load")
	}
}
