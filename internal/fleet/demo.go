// The fleet demo: the end-to-end scenario cmd/dfload and the CI smoke
// job run. One cold replica discovers a winner under load; the winner
// replicates through the hub; the remaining replicas of the same tenant
// warm-start from it — live (watch → reseed) for replicas booted before
// the discovery, at boot (bootstrap resync) for replicas booted after —
// while a replica of a different tenant sees none of it.
package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"
)

// DemoConfig parameterizes RunDemo.
type DemoConfig struct {
	// Replicas is the fleet size, at least 2: replica 1 runs cold,
	// replicas 2..N-1 boot alongside it and warm-start live, replica N
	// boots after the winner exists and warm-starts at boot.
	Replicas int
	// Section is the native section to drive. Default "sort".
	Section string
	// Iters is the per-request iteration count (0 = section default).
	Iters int
	// QPS and Duration shape the sustained load on each replica.
	QPS      float64
	Duration time.Duration
	// Tenant namespaces the fleet; an extra off-tenant replica verifies
	// isolation. Default "demo".
	Tenant string
	// Workers, Sampling, Production are passed to each replica's
	// sections. Workers defaults to 2 so an N-replica fleet fits small
	// hosts.
	Workers    int
	Sampling   time.Duration
	Production time.Duration
	// MetricsDir, when non-empty, receives a final /metrics scrape of
	// the hub and every replica (hub.prom, <replica>.prom).
	MetricsDir string
	// Logger receives fleet progress logs. Default slog.Default().
	Logger *slog.Logger
}

// ReplicaReport is one replica's outcome.
type ReplicaReport struct {
	Name string `json:"name"`
	// Tenant is the replica's namespace.
	Tenant string `json:"tenant"`
	// WarmStartHits is the replica's final warm-start counter.
	WarmStartHits int64 `json:"warm_start_hits"`
	// Winner is the driven section's final winner.
	Winner string `json:"winner"`
	// SampledAtWinner counts sampling intervals the replica itself spent
	// before reaching its winner (seeded history excluded) — the local
	// cost of reaching production. Cold replicas pay at least one
	// interval per variant; warm-started replicas sample only the seeded
	// winner (§4.5), so they adapt measurably faster.
	SampledAtWinner int `json:"sampled_at_winner"`
	// Requests and Errors are the load driver's counts for this replica.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// DrainErr is the drain failure, "" on a clean drain.
	DrainErr string `json:"drain_err,omitempty"`
}

// DemoReport is RunDemo's outcome. Failed assertions are returned as an
// error alongside the report, which is always populated as far as the
// demo got.
type DemoReport struct {
	Section  string          `json:"section"`
	HubURL   string          `json:"hub_url"`
	Replicas []ReplicaReport `json:"replicas"`
	// Isolated is the off-tenant replica's report; its WarmStartHits
	// must stay 0.
	Isolated ReplicaReport `json:"isolated"`
}

func (c DemoConfig) withDefaults() DemoConfig {
	if c.Replicas < 2 {
		c.Replicas = 3
	}
	if c.Section == "" {
		c.Section = "sort"
	}
	if c.QPS <= 0 {
		c.QPS = 50
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Tenant == "" {
		c.Tenant = "demo"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Sampling <= 0 {
		c.Sampling = 2 * time.Millisecond
	}
	if c.Production <= 0 {
		c.Production = 500 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// RunDemo executes the fleet scenario and asserts its invariants:
// every same-tenant replica beyond the first warm-starts (hit counter
// > 0), the off-tenant replica never does, and every component drains
// cleanly. The returned report carries the evidence either way.
func RunDemo(ctx context.Context, cfg DemoConfig) (*DemoReport, error) {
	cfg = cfg.withDefaults()
	log := cfg.Logger
	report := &DemoReport{Section: cfg.Section}

	hub, err := StartHub("", nil, log)
	if err != nil {
		return report, err
	}
	defer hub.Close()
	report.HubURL = hub.URL
	log.Info("fleet hub up", "url", hub.URL)

	rcfg := func(name, tenant string) ReplicaConfig {
		return ReplicaConfig{
			Name:             name,
			HubURL:           hub.URL,
			Tenant:           tenant,
			Workers:          cfg.Workers,
			TargetSampling:   cfg.Sampling,
			TargetProduction: cfg.Production,
			Logger:           log.With("replica", name),
		}
	}

	// Replica 1 (cold) and replicas 2..N-1 boot together; the latter sit
	// idle, waiting to be warm-started live by replica 1's discovery.
	var replicas []*Replica
	drainAll := func() {
		for _, r := range replicas {
			if r == nil {
				continue
			}
			dctx, done := context.WithTimeout(context.Background(), 10*time.Second)
			err := r.Drain(dctx)
			done()
			if err != nil {
				if report.Isolated.Name == r.Name {
					report.Isolated.DrainErr = err.Error()
				}
				for i := range report.Replicas {
					if report.Replicas[i].Name == r.Name {
						report.Replicas[i].DrainErr = err.Error()
					}
				}
				log.Warn("replica drain failed", "replica", r.Name, "err", err)
			}
		}
		replicas = nil
	}
	defer drainAll()

	for i := 1; i < cfg.Replicas; i++ { // 1..N-1 now; N after the winner
		name := fmt.Sprintf("replica-%d", i)
		r, err := StartReplica(rcfg(name, cfg.Tenant))
		if err != nil {
			return report, err
		}
		replicas = append(replicas, r)
		report.Replicas = append(report.Replicas, ReplicaReport{Name: name, Tenant: cfg.Tenant})
		log.Info("replica up", "replica", name, "url", r.URL)
	}
	isolated, err := StartReplica(rcfg("isolated", cfg.Tenant+"-other"))
	if err != nil {
		return report, err
	}
	replicas = append(replicas, isolated)
	report.Isolated = ReplicaReport{Name: "isolated", Tenant: cfg.Tenant + "-other"}

	// Phase 1: drive the cold replica until it discovers a winner.
	cold := replicas[0]
	log.Info("driving cold replica", "replica", cold.Name, "section", cfg.Section, "qps", cfg.QPS)
	coldRep := Drive(ctx, cold.URL, LoadConfig{
		Section: cfg.Section, Iters: cfg.Iters, QPS: cfg.QPS, Duration: cfg.Duration,
		Until: func() bool {
			p, err := Probe(ctx, cold.URL)
			return err == nil && p.Sections[cfg.Section].Winner != ""
		},
	})
	report.Replicas[0].Requests = coldRep.Requests
	report.Replicas[0].Errors = coldRep.Errors
	p, err := Probe(ctx, cold.URL)
	if err != nil {
		return report, err
	}
	coldSec := p.Sections[cfg.Section]
	if coldSec.Winner == "" {
		return report, fmt.Errorf("fleet: cold replica found no winner within %v (%d requests)",
			cfg.Duration, coldRep.Requests)
	}
	report.Replicas[0].Winner = coldSec.Winner
	report.Replicas[0].SampledAtWinner = coldSec.Sampled
	log.Info("cold replica converged", "winner", coldSec.Winner,
		"sampled_intervals", coldSec.Sampled, "requests", coldRep.Requests)

	// Phase 2: the winner replicates; live replicas reseed through their
	// store watch without having served a single request.
	for i, r := range replicas[:len(replicas)-1] {
		if i == 0 {
			continue
		}
		if err := WaitFor(ctx, cfg.Duration, 20*time.Millisecond, func() bool {
			return r.Server.WarmStartHits() > 0
		}); err != nil {
			return report, fmt.Errorf("fleet: %s never warm-started from the fleet record: %w", r.Name, err)
		}
		log.Info("replica warm-started live", "replica", r.Name)
	}

	// Phase 3: a late replica boots after the winner exists and
	// warm-starts during its bootstrap resync, before serving anything.
	lateName := fmt.Sprintf("replica-%d", cfg.Replicas)
	late, err := StartReplica(rcfg(lateName, cfg.Tenant))
	if err != nil {
		return report, err
	}
	replicas = append(replicas, late)
	report.Replicas = append(report.Replicas, ReplicaReport{Name: lateName, Tenant: cfg.Tenant})
	if err := WaitFor(ctx, cfg.Duration, 20*time.Millisecond, func() bool {
		return late.Server.WarmStartHits() > 0
	}); err != nil {
		return report, fmt.Errorf("fleet: late replica never warm-started at boot: %w", err)
	}
	log.Info("late replica warm-started at boot", "replica", lateName)

	// Phase 4: drive every warm replica and the off-tenant one; warm
	// replicas must reach production having sampled only the seeded
	// winner, the off-tenant replica learns on its own.
	warm := append(append([]*Replica{}, replicas[1:len(replicas)-2]...), late)
	for _, r := range warm {
		base, err := Probe(ctx, r.URL)
		if err != nil {
			return report, err
		}
		seeded := base.Sections[cfg.Section].Sampled
		rep := Drive(ctx, r.URL, LoadConfig{
			Section: cfg.Section, Iters: cfg.Iters, QPS: cfg.QPS, Duration: cfg.Duration,
			Until: func() bool {
				p, err := Probe(ctx, r.URL)
				return err == nil && p.Sections[cfg.Section].Winner != ""
			},
		})
		p, err := Probe(ctx, r.URL)
		if err != nil {
			return report, err
		}
		sec := p.Sections[cfg.Section]
		for i := range report.Replicas {
			if report.Replicas[i].Name != r.Name {
				continue
			}
			report.Replicas[i].Requests = rep.Requests
			report.Replicas[i].Errors = rep.Errors
			report.Replicas[i].Winner = sec.Winner
			report.Replicas[i].SampledAtWinner = sec.Sampled - seeded
			report.Replicas[i].WarmStartHits = p.WarmStartHits
		}
		log.Info("warm replica converged", "replica", r.Name, "winner", sec.Winner,
			"sampled_intervals", sec.Sampled-seeded, "warm_start_hits", p.WarmStartHits)
	}
	isoRep := Drive(ctx, isolated.URL, LoadConfig{
		Section: cfg.Section, Iters: cfg.Iters, QPS: cfg.QPS, Duration: cfg.Duration,
		Until: func() bool {
			p, err := Probe(ctx, isolated.URL)
			return err == nil && p.Sections[cfg.Section].Winner != ""
		},
	})
	ip, err := Probe(ctx, isolated.URL)
	if err != nil {
		return report, err
	}
	report.Isolated.Requests = isoRep.Requests
	report.Isolated.Errors = isoRep.Errors
	report.Isolated.Winner = ip.Sections[cfg.Section].Winner
	report.Isolated.SampledAtWinner = ip.Sections[cfg.Section].Sampled
	report.Isolated.WarmStartHits = ip.WarmStartHits

	// Final scrapes before the fleet drains.
	if cfg.MetricsDir != "" {
		if err := os.MkdirAll(cfg.MetricsDir, 0o755); err != nil {
			return report, err
		}
		targets := map[string]string{"hub": hub.URL}
		for _, r := range replicas {
			targets[r.Name] = r.URL
		}
		for name, url := range targets {
			body, err := ScrapeMetrics(ctx, url)
			if err != nil {
				return report, fmt.Errorf("fleet: scraping %s: %w", name, err)
			}
			path := filepath.Join(cfg.MetricsDir, name+".prom")
			if err := os.WriteFile(path, body, 0o644); err != nil {
				return report, err
			}
		}
		log.Info("metrics scraped", "dir", cfg.MetricsDir, "targets", len(targets))
	}

	// Assertions.
	var failures []error
	for _, rr := range report.Replicas[1:] {
		if rr.WarmStartHits == 0 {
			failures = append(failures, fmt.Errorf("replica %s: warm-start hits = 0, want > 0", rr.Name))
		}
		if rr.Winner != report.Replicas[0].Winner {
			failures = append(failures, fmt.Errorf("replica %s: winner %q diverged from the fleet's %q",
				rr.Name, rr.Winner, report.Replicas[0].Winner))
		}
		if rr.SampledAtWinner >= report.Replicas[0].SampledAtWinner {
			failures = append(failures, fmt.Errorf(
				"replica %s: sampled %d intervals before its winner, not fewer than the cold replica's %d",
				rr.Name, rr.SampledAtWinner, report.Replicas[0].SampledAtWinner))
		}
	}
	if report.Isolated.WarmStartHits != 0 {
		failures = append(failures, fmt.Errorf("off-tenant replica warm-started from tenant %q records (hits=%d)",
			cfg.Tenant, report.Isolated.WarmStartHits))
	}
	drainAll()
	for _, rr := range append(report.Replicas, report.Isolated) {
		if rr.DrainErr != "" {
			failures = append(failures, fmt.Errorf("replica %s: drain: %s", rr.Name, rr.DrainErr))
		}
	}
	if len(failures) > 0 {
		return report, fmt.Errorf("fleet: %d assertion(s) failed: %v", len(failures), failures)
	}
	return report, nil
}
