// Package fleet orchestrates a dfserved fleet in-process: a dfstored
// policy hub plus N serving replicas wired to it through replicated
// stores, with a sustained-QPS load driver and /stats probes. It is the
// engine behind cmd/dfload and the fleet integration tests, and exists
// so both exercise exactly the production wiring (real HTTP listeners,
// real replication, real drain) rather than a test double.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/dynfb/store"
	"repro/dynfb/store/hub"
	"repro/internal/serve"
)

// Hub is a running dfstored policy hub on a real listener.
type Hub struct {
	URL string
	hub *hub.Hub
	srv *http.Server
}

// StartHub starts a hub on addr ("" picks a loopback port). The backing
// backend is optional; nil keeps state in memory.
func StartHub(addr string, backing store.Backend, logger *slog.Logger) (*Hub, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	h, err := hub.New(hub.Config{Backing: backing, Logger: logger})
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h.Handler()}
	go srv.Serve(lis)
	return &Hub{URL: "http://" + lis.Addr().String(), hub: h, srv: srv}, nil
}

// Close drains the hub listener.
func (h *Hub) Close() error {
	ctx, done := context.WithTimeout(context.Background(), 5*time.Second)
	defer done()
	return h.srv.Shutdown(ctx)
}

// ReplicaConfig parameterizes one serving replica.
type ReplicaConfig struct {
	// Name is the replica's identity: its store origin and report label.
	Name string
	// HubURL, when non-empty, replicates the replica's store through a
	// hub; empty runs the replica with an isolated in-memory store.
	HubURL string
	// Tenant namespaces the replica's records in the shared hub.
	Tenant string
	// Workers, TargetSampling, TargetProduction and MaxConcurrent are
	// passed through to serve.Config.
	Workers          int
	TargetSampling   time.Duration
	TargetProduction time.Duration
	MaxConcurrent    int
	// Logger receives the replica's structured logs.
	Logger *slog.Logger
}

// Replica is a running dfserved replica on a real listener.
type Replica struct {
	Name   string
	URL    string
	Server *serve.Server
	Store  *store.ReplStore // nil without a hub
	srv    *http.Server
}

// StartReplica boots a replica and waits for its listener.
func StartReplica(cfg ReplicaConfig) (*Replica, error) {
	scfg := serve.Config{
		Workers:          cfg.Workers,
		TargetSampling:   cfg.TargetSampling,
		TargetProduction: cfg.TargetProduction,
		MaxConcurrent:    cfg.MaxConcurrent,
		Tenant:           cfg.Tenant,
		Logger:           cfg.Logger,
	}
	var rs *store.ReplStore
	if cfg.HubURL != "" {
		var err error
		rs, err = store.OpenRepl(store.ReplConfig{
			HubURL: cfg.HubURL,
			Origin: cfg.Name,
			Logger: cfg.Logger,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: replica %s: %w", cfg.Name, err)
		}
		scfg.Backend = rs
	} else {
		scfg.Backend = store.NewMemStore()
	}
	sv, err := serve.New(scfg)
	if err != nil {
		if rs != nil {
			rs.Close()
		}
		return nil, fmt.Errorf("fleet: replica %s: %w", cfg.Name, err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sv.Close()
		if rs != nil {
			rs.Close()
		}
		return nil, fmt.Errorf("fleet: replica %s: %w", cfg.Name, err)
	}
	srv := &http.Server{Handler: sv.Handler()}
	go srv.Serve(lis)
	return &Replica{
		Name:   cfg.Name,
		URL:    "http://" + lis.Addr().String(),
		Server: sv,
		Store:  rs,
		srv:    srv,
	}, nil
}

// Drain gracefully shuts the replica down in production order: stop
// accepting connections and wait for in-flight requests, persist every
// section's record, then flush the replicated store to the hub.
func (r *Replica) Drain(ctx context.Context) error {
	err := r.srv.Shutdown(ctx)
	if perr := r.Server.Close(); err == nil {
		err = perr
	}
	if r.Store != nil {
		if serr := r.Store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// LoadConfig parameterizes the load driver.
type LoadConfig struct {
	// Section is the native section to drive (e.g. "sort").
	Section string
	// Iters is the per-request iteration count (0 = the section default).
	Iters int
	// QPS is the sustained request rate. Default 50.
	QPS float64
	// Duration bounds the drive. Default 5s.
	Duration time.Duration
	// Concurrency caps in-flight requests. Default 4.
	Concurrency int
	// Until, when non-nil, is polled after each response; the drive stops
	// early once it returns true (e.g. "the section has a winner").
	Until func() bool
}

// LoadReport summarizes one drive.
type LoadReport struct {
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"`
	Elapsed  time.Duration `json:"elapsed_ns"`
}

// Drive sends sustained POST /run traffic at cfg.QPS until the duration
// elapses, the context is canceled, or cfg.Until reports done.
func Drive(ctx context.Context, baseURL string, cfg LoadConfig) LoadReport {
	if cfg.QPS <= 0 {
		cfg.QPS = 50
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	body, _ := json.Marshal(map[string]any{"section": cfg.Section, "iters": cfg.Iters})

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	var (
		report  LoadReport
		wg      sync.WaitGroup
		done    atomic.Bool
		slots   = make(chan struct{}, cfg.Concurrency)
		tick    = time.NewTicker(time.Duration(float64(time.Second) / cfg.QPS)) //dfvet:allow walltime paces the live request load at the configured QPS
		started = time.Now()                                                    //dfvet:allow walltime wall-clock start of the load run for the report
	)
	defer tick.Stop()
	for !done.Load() {
		select {
		case <-ctx.Done():
			done.Store(true)
		case <-tick.C:
			select {
			case slots <- struct{}{}:
			default:
				continue // all slots busy: shed this tick rather than queue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				if err := postRun(ctx, baseURL, body); err != nil {
					if ctx.Err() != nil {
						// Cut off by the load deadline mid-flight: the
						// generator's own shutdown, not a server failure.
						return
					}
					atomic.AddInt64(&report.Errors, 1)
				}
				atomic.AddInt64(&report.Requests, 1)
				if cfg.Until != nil && cfg.Until() {
					done.Store(true)
				}
			}()
		}
	}
	wg.Wait()
	report.Elapsed = time.Since(started) //dfvet:allow walltime wall-clock elapsed of the load run for the report
	return report
}

func postRun(ctx context.Context, baseURL string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/run", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: /run: %s", resp.Status)
	}
	return nil
}

// SectionProbe is one section's state as reported by /stats.
type SectionProbe struct {
	Phase       string
	Winner      string
	WarmStarted bool
	Switches    int
	Sampled     int // total sampling intervals across variants
}

// StatsProbe is a parsed /stats response.
type StatsProbe struct {
	Tenant        string
	WarmStartHits int64
	Connected     bool
	HubSeq        uint64
	Pending       int
	Sections      map[string]SectionProbe
}

// statsDoc mirrors the serve /stats wire format, loosely.
type statsDoc struct {
	Server struct {
		Tenant        string `json:"tenant"`
		WarmStartHits int64  `json:"warm_start_hits"`
	} `json:"server"`
	Sections map[string]struct {
		Phase       string `json:"phase"`
		Winner      string `json:"winner"`
		WarmStarted bool   `json:"warm_started"`
		Switches    int    `json:"switches"`
		Variants    []struct {
			TimesSampled int `json:"times_sampled"`
		} `json:"variants"`
	} `json:"sections"`
	StoreSync *struct {
		Connected     bool   `json:"connected"`
		HubSeq        uint64 `json:"hub_seq"`
		PendingPushes int    `json:"pending_pushes"`
	} `json:"store_sync"`
}

// Probe fetches and parses a replica's /stats.
func Probe(ctx context.Context, baseURL string) (StatsProbe, error) {
	var doc statsDoc
	if err := getJSON(ctx, baseURL+"/stats", &doc); err != nil {
		return StatsProbe{}, err
	}
	out := StatsProbe{
		Tenant:        doc.Server.Tenant,
		WarmStartHits: doc.Server.WarmStartHits,
		Sections:      map[string]SectionProbe{},
	}
	if doc.StoreSync != nil {
		out.Connected = doc.StoreSync.Connected
		out.HubSeq = doc.StoreSync.HubSeq
		out.Pending = doc.StoreSync.PendingPushes
	}
	for name, sec := range doc.Sections {
		p := SectionProbe{
			Phase:       sec.Phase,
			Winner:      sec.Winner,
			WarmStarted: sec.WarmStarted,
			Switches:    sec.Switches,
		}
		for _, v := range sec.Variants {
			p.Sampled += v.TimesSampled
		}
		out.Sections[name] = p
	}
	return out, nil
}

// ScrapeMetrics fetches a /metrics endpoint's raw text.
func ScrapeMetrics(ctx context.Context, baseURL string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: /metrics: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// WaitFor polls fn every interval until it reports true, the context is
// canceled, or the timeout elapses.
func WaitFor(ctx context.Context, timeout, interval time.Duration, fn func() bool) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	for {
		if fn() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval): //dfvet:allow walltime real-time retry backoff between hub sync attempts
		}
	}
}
