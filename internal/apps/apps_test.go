package apps

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/interp"
	"repro/internal/simmach"
)

func TestSourceLookup(t *testing.T) {
	for _, n := range Names {
		if _, err := Source(n); err != nil {
			t.Errorf("Source(%s): %v", n, err)
		}
	}
	if _, err := Source("nope"); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Compile("nope"); err == nil {
		t.Error("Compile of unknown app accepted")
	}
	if TestParams("nope") != nil || BenchParams("nope") != nil || SectionNames("nope") != nil {
		t.Error("unknown app returned presets")
	}
}

func TestAllAppsCompile(t *testing.T) {
	for _, n := range Names {
		c, err := Compile(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		// Every candidate section must be found and parallelized.
		var names []string
		for _, sec := range c.Parallel.Sections {
			names = append(names, sec.Name)
		}
		want := SectionNames(n)
		if len(names) != len(want) {
			t.Fatalf("%s sections = %v, want %v", n, names, want)
		}
		for i := range want {
			if names[i] != want[i] {
				t.Errorf("%s section %d = %s, want %s", n, i, names[i], want[i])
			}
		}
	}
}

func TestSectionVersionStructure(t *testing.T) {
	// The policy-version structure must match the paper's reports (§6).
	cases := []struct {
		app      string
		section  string
		versions int
		merged   [][2]string // policy pairs that must share a version
		distinct [][2]string // policy pairs that must differ
	}{
		{NameBarnesHut, "FORCES", 3, nil,
			[][2]string{{"original", "bounded"}, {"bounded", "aggressive"}}},
		{NameBarnesHut, "ADVANCEALL", 2,
			[][2]string{{"bounded", "aggressive"}},
			[][2]string{{"original", "bounded"}}},
		{NameWater, "INTERF", 2,
			[][2]string{{"bounded", "aggressive"}},
			[][2]string{{"original", "bounded"}}},
		{NameWater, "POTENG", 2,
			[][2]string{{"original", "bounded"}},
			[][2]string{{"bounded", "aggressive"}}},
		{NameString, "BACKPROJECT", 2,
			[][2]string{{"bounded", "aggressive"}},
			[][2]string{{"original", "bounded"}}},
	}
	compiled := map[string]*struct {
		secs map[string]map[string]int
		nver map[string]int
	}{}
	for _, n := range Names {
		c, err := Compile(n)
		if err != nil {
			t.Fatal(err)
		}
		entry := &struct {
			secs map[string]map[string]int
			nver map[string]int
		}{secs: map[string]map[string]int{}, nver: map[string]int{}}
		for _, sec := range c.Parallel.Sections {
			entry.secs[sec.Name] = sec.PolicyVersion
			entry.nver[sec.Name] = len(sec.Versions)
		}
		compiled[n] = entry
	}
	for _, tc := range cases {
		e := compiled[tc.app]
		pv := e.secs[tc.section]
		if pv == nil {
			t.Errorf("%s: no section %s", tc.app, tc.section)
			continue
		}
		if got := e.nver[tc.section]; got != tc.versions {
			t.Errorf("%s %s: versions = %d, want %d", tc.app, tc.section, got, tc.versions)
		}
		for _, pair := range tc.merged {
			if pv[pair[0]] != pv[pair[1]] {
				t.Errorf("%s %s: %s and %s not merged", tc.app, tc.section, pair[0], pair[1])
			}
		}
		for _, pair := range tc.distinct {
			if pv[pair[0]] == pv[pair[1]] {
				t.Errorf("%s %s: %s and %s wrongly merged", tc.app, tc.section, pair[0], pair[1])
			}
		}
	}
}

func parseFloats(t *testing.T, out []string) []float64 {
	t.Helper()
	vals := make([]float64, len(out))
	for i, s := range out {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("output %q not numeric", s)
		}
		vals[i] = v
	}
	return vals
}

func TestAppsParallelCorrectness(t *testing.T) {
	// For every app, all policies and dynamic feedback at several processor
	// counts must compute the serial results (up to reassociation of the
	// commuting float reductions).
	for _, n := range Names {
		n := n
		t.Run(n, func(t *testing.T) {
			c, err := Compile(n)
			if err != nil {
				t.Fatal(err)
			}
			params := TestParams(n)
			sres, err := interp.Run(c.Serial, interp.Options{Params: params})
			if err != nil {
				t.Fatal(err)
			}
			want := parseFloats(t, sres.Output)
			for _, policy := range []string{"original", "bounded", "aggressive", interp.PolicyDynamic} {
				for _, procs := range []int{1, 3, 8} {
					res, err := interp.Run(c.Parallel, interp.Options{
						Procs: procs, Policy: policy, Params: params,
						TargetSampling: simmach.Millisecond,
					})
					if err != nil {
						t.Fatalf("%s/%d: %v", policy, procs, err)
					}
					got := parseFloats(t, res.Output)
					if len(got) != len(want) {
						t.Fatalf("%s/%d: output %v, want %v", policy, procs, got, want)
					}
					for i := range want {
						if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
							t.Errorf("%s/%d: out[%d] = %v, want %v", policy, procs, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// midParams returns an intermediate scale: large enough for the paper's
// qualitative shapes, small enough for unit tests.
func midParams(name string) map[string]int64 {
	switch name {
	case NameBarnesHut:
		return map[string]int64{"nbodies": 256, "listlen": 48, "interwork": 20000, "npasses": 1, "serialwork": 10000}
	case NameWater:
		return map[string]int64{"nmol": 128, "nsteps": 1, "serialwork": 8000}
	case NameString:
		return map[string]int64{"gridside": 16, "nrays": 256, "pathlen": 32, "nrounds": 1, "serialwork": 8000}
	}
	return nil
}

func TestBarnesHutShape(t *testing.T) {
	c, err := Compile(NameBarnesHut)
	if err != nil {
		t.Fatal(err)
	}
	params := midParams(NameBarnesHut)
	times := map[string]float64{}
	acquires := map[string]int64{}
	for _, policy := range []string{"original", "bounded", "aggressive"} {
		res, err := interp.Run(c.Parallel, interp.Options{Procs: 8, Policy: policy, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		times[policy] = res.Time.Seconds()
		acquires[policy] = res.Counters.Acquires
	}
	// Aggressive must clearly win Barnes-Hut (Table 2).
	if !(times["aggressive"] < times["bounded"] && times["bounded"] < times["original"]) {
		t.Errorf("BH time ordering wrong: %v", times)
	}
	// Locking ratios: Original ≈ 2× Bounded ≫ Aggressive (Table 3).
	if r := float64(acquires["original"]) / float64(acquires["bounded"]); r < 1.8 || r > 2.2 {
		t.Errorf("original/bounded acquires = %.2f, want ≈2 (%v)", r, acquires)
	}
	if acquires["aggressive"]*20 > acquires["bounded"] {
		t.Errorf("aggressive acquires %d not ≪ bounded %d", acquires["aggressive"], acquires["bounded"])
	}
}

func TestWaterShape(t *testing.T) {
	c, err := Compile(NameWater)
	if err != nil {
		t.Fatal(err)
	}
	params := midParams(NameWater)
	run := func(policy string, procs int) *interp.Result {
		res, err := interp.Run(c.Parallel, interp.Options{
			Procs: procs, Policy: policy, Params: params,
			TargetSampling: 2 * simmach.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// At 1 processor Aggressive is best (least locking, no contention) —
	// Table 7's first column.
	a1, b1, o1 := run("aggressive", 1), run("bounded", 1), run("original", 1)
	if !(a1.Time < b1.Time && b1.Time < o1.Time) {
		t.Errorf("1-proc ordering wrong: agg %v bnd %v orig %v", a1.Time, b1.Time, o1.Time)
	}
	// At 8 processors Aggressive collapses from false exclusion and Bounded
	// wins (Table 7, Figure 6).
	a8, b8 := run("aggressive", 8), run("bounded", 8)
	if float64(b8.Time)*1.5 > float64(a8.Time) {
		t.Errorf("8-proc: bounded %v not clearly ahead of aggressive %v", b8.Time, a8.Time)
	}
	// Aggressive's failure mode is waiting, not locking (Figure 7).
	if a8.Counters.WaitTime < 2*a8.Counters.LockTime {
		t.Errorf("aggressive 8-proc wait %v vs lock %v", a8.Counters.WaitTime, a8.Counters.LockTime)
	}
	// Dynamic adapts: near-best at both processor counts.
	d1 := run(interp.PolicyDynamic, 1)
	d8 := run(interp.PolicyDynamic, 8)
	if float64(d1.Time) > 1.35*float64(a1.Time) {
		t.Errorf("dynamic@1 %v too far from best %v", d1.Time, a1.Time)
	}
	// Sampling the serializing Aggressive version is the dominant sampling
	// cost (the paper makes the same observation for POTENG, Table 12); at
	// this reduced scale it bounds how close Dynamic can get.
	if float64(d8.Time) > 1.6*float64(b8.Time) {
		t.Errorf("dynamic@8 %v too far from best %v", d8.Time, b8.Time)
	}
}

func TestStringShape(t *testing.T) {
	c, err := Compile(NameString)
	if err != nil {
		t.Fatal(err)
	}
	params := midParams(NameString)
	times := map[string]float64{}
	acquires := map[string]int64{}
	for _, policy := range []string{"original", "bounded"} {
		res, err := interp.Run(c.Parallel, interp.Options{Procs: 8, Policy: policy, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		times[policy] = res.Time.Seconds()
		acquires[policy] = res.Counters.Acquires
	}
	// Coalescing halves the per-visit lock traffic and wins.
	if r := float64(acquires["original"]) / float64(acquires["bounded"]); r < 1.7 {
		t.Errorf("original/bounded acquires = %.2f, want ≈2", r)
	}
	if times["bounded"] >= times["original"] {
		t.Errorf("bounded %v not faster than original %v", times["bounded"], times["original"])
	}
}

func TestDynamicProductionPolicyPerSection(t *testing.T) {
	// Water: the best policy differs per section — INTERF's best version is
	// the merged bounded/aggressive one, POTENG's is original/bounded. The
	// controller must choose accordingly (the paper's central claim).
	c, err := Compile(NameWater)
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(c.Parallel, interp.Options{
		Procs: 8, Policy: interp.PolicyDynamic, Params: midParams(NameWater),
		TargetSampling: 2 * simmach.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"INTERF": "bounded/aggressive",
		"POTENG": "original/bounded",
	}
	for _, sec := range res.Sections {
		var prod string
		for _, s := range sec.Samples {
			if s.Kind == "production" {
				prod = s.Label
				break
			}
		}
		if prod == "" {
			for _, s := range sec.Samples {
				if s.Kind == "partial" {
					prod = s.Label
				}
			}
		}
		if w := want[sec.Name]; w != "" && prod != w {
			t.Errorf("%s production version = %q, want %q (samples: %+v)", sec.Name, prod, w, sec.Samples)
		}
	}
}

func TestOverheadMonotoneAcrossPolicies(t *testing.T) {
	// §4.5: locking overhead never increases and waiting overhead never
	// decreases from Original toward Aggressive. Checked on Water at 8
	// procs, the contended case.
	c, err := Compile(NameWater)
	if err != nil {
		t.Fatal(err)
	}
	params := midParams(NameWater)
	var lockT, waitT []simmach.Time
	for _, policy := range []string{"original", "bounded", "aggressive"} {
		res, err := interp.Run(c.Parallel, interp.Options{Procs: 8, Policy: policy, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		lockT = append(lockT, res.Counters.LockTime)
		waitT = append(waitT, res.Counters.WaitTime)
	}
	if !(lockT[0] >= lockT[1] && lockT[1] >= lockT[2]) {
		t.Errorf("locking time not nonincreasing: %v", lockT)
	}
	if !(waitT[0] <= waitT[2]) {
		t.Errorf("waiting time not increasing toward aggressive: %v", waitT)
	}
}

func TestSamplesStableOverTime(t *testing.T) {
	// Figures 5/8/9: measured overheads stay relatively stable over time.
	// Run Barnes-Hut FORCES with small intervals and check that, per
	// version, sampled overheads have small spread.
	c, err := Compile(NameBarnesHut)
	if err != nil {
		t.Fatal(err)
	}
	params := midParams(NameBarnesHut)
	params["npasses"] = 2
	res, err := interp.Run(c.Parallel, interp.Options{
		Procs: 8, Policy: interp.PolicyDynamic, Params: params,
		TargetSampling: simmach.Millisecond, TargetProduction: 20 * simmach.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range res.Sections {
		if sec.Name != "FORCES" {
			continue
		}
		byVersion := map[string][]float64{}
		for _, s := range sec.Samples {
			if s.Kind == "sampling" {
				byVersion[s.Label] = append(byVersion[s.Label], s.Overhead)
			}
		}
		if len(byVersion) < 3 {
			t.Fatalf("sampled versions = %d, want 3 (%v)", len(byVersion), byVersion)
		}
		for label, overs := range byVersion {
			if len(overs) < 2 {
				continue
			}
			lo, hi := overs[0], overs[0]
			for _, o := range overs {
				lo = math.Min(lo, o)
				hi = math.Max(hi, o)
			}
			if hi-lo > 0.25 {
				t.Errorf("%s overhead unstable: spread %.3f (%v)", label, hi-lo, overs)
			}
		}
	}
}

func TestCodeSizesTable1Shape(t *testing.T) {
	// Table 1: multi-version code growth over a single-policy build is
	// modest.
	for _, n := range Names {
		c, err := Compile(n)
		if err != nil {
			t.Fatal(err)
		}
		sz := c.Sizes()
		agg := sz.PerPolicy["aggressive"]
		if sz.Dynamic <= agg {
			t.Errorf("%s: dynamic %d not larger than aggressive %d", n, sz.Dynamic, agg)
		}
		if float64(sz.Dynamic) > 1.6*float64(agg) {
			t.Errorf("%s: dynamic %d more than 1.6× aggressive %d — growth should be small", n, sz.Dynamic, agg)
		}
	}
}

// TestGoldenOutputs pins the applications' computed results at test scale:
// the physics is deterministic, so any change to evaluation order, extern
// semantics or lowering that alters results is caught here.
func TestGoldenOutputs(t *testing.T) {
	want := map[string][]string{}
	for _, n := range Names {
		c, err := Compile(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := interp.Run(c.Serial, interp.Options{Params: TestParams(n)})
		if err != nil {
			t.Fatal(err)
		}
		want[n] = res.Output
		// Re-running must give byte-identical output.
		res2, err := interp.Run(c.Serial, interp.Options{Params: TestParams(n)})
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Output {
			if res.Output[i] != res2.Output[i] {
				t.Errorf("%s: output not deterministic: %q vs %q", n, res.Output[i], res2.Output[i])
			}
		}
		if len(res.Output) != 3 {
			t.Errorf("%s: output lines = %d, want 3", n, len(res.Output))
		}
	}
}
