// Package apps contains the three benchmark applications of the paper's
// evaluation (§6) — Barnes-Hut, Water, and String — written in OBL, plus
// their input-scale presets.
//
// Each application is a serial object-based program with no pragmas or
// annotations; the compiler parallelizes it automatically via commutativity
// analysis and generates one version per synchronization optimization
// policy. The programs are faithful miniatures: they preserve the parallel
// section structure, the lock-usage topology, and the call-graph properties
// (in particular the recursions) that make the three policies generate
// different code in exactly the places the paper reports:
//
//   - Barnes-Hut: one_interaction performs two reduction updates on the
//     receiving body (Bounded coalesces them into one region); the
//     interaction loop invokes a recursive tree-descent (walk), so Bounded
//     declines the loop lift that Aggressive performs. FORCES therefore has
//     three distinct versions (Table 2/3 behaviour).
//   - Water INTERF: each pair operation updates three force components on
//     each of the two molecules; coalescing merges them per molecule, and
//     nothing lifts (two locks per iteration), so Bounded and Aggressive
//     generate identical code (§6.2).
//   - Water POTENG: a single global accumulator is updated once per pair
//     through a recursive energy expansion; Bounded declines every
//     enlargement (the region would contain the recursion), so Original and
//     Bounded coincide, while Aggressive lifts the accumulator lock out of
//     the pair loop and serializes the computation through false exclusion
//     (§6.2, Figure 7).
//   - String: rays are back-projected onto a shared velocity grid; cell
//     updates coalesce (Bounded ≡ Aggressive) but cannot lift (the lock
//     varies along the path). The paper's §6.3 text was unavailable in our
//     source; String is reproduced at the structural level (see
//     EXPERIMENTS.md).
//
// Substitutions (documented per DESIGN.md): the Barnes-Hut tree build and
// traversal are replaced by a recursive index descent over a body array
// with equivalent call-graph shape; expensive numeric kernels are modeled
// by extern calls with calibrated virtual costs (interact/force/term) plus
// work(n) for bulk computation. Input sizes are scaled down from the
// paper's (16,384 bodies / 512 molecules) and virtual costs calibrated so
// per-iteration times have paper-like magnitudes (milliseconds).
package apps

import (
	"fmt"

	"repro/internal/obl/polgen"
	"repro/oblc"
)

// BarnesHut is the OBL source of the Barnes-Hut miniature.
const BarnesHut = `
// Barnes-Hut: hierarchical N-body solver (miniature).
extern interact(a: float, b: float): float cost 1000;
extern noise(i: int): float cost 60;
extern work(n: int) cost 0;

param nbodies: int = 2048;
param listlen: int = 64;
param interwork: int = 20000;
param npasses: int = 2;
param serialwork: int = 50000;

class Body {
  pos: float;
  vel: float;
  sum: float;
  count: float;

  // walk stands in for the recursive Barnes-Hut tree descent: it selects
  // an interaction partner by binary descent over the body index space.
  method walk(lo: int, hi: int, k: int): int {
    if hi - lo <= 1 {
      return lo;
    }
    let mid: int = (lo + hi) / 2;
    if k % 2 == 0 {
      return this.walk(lo, mid, k / 2);
    }
    return this.walk(mid, hi, k / 2);
  }

  method one_interaction(b: Body) {
    work(interwork);
    let val: float = interact(this.pos, b.pos);
    this.sum = this.sum + val;
    this.count = this.count + 1.0;
  }

  method interactions(bs: Body[], nb: int, ll: int, me: int) {
    for k in 0..ll {
      let j: int = this.walk(0, nb, me * 31 + k * 17 + 7);
      this.one_interaction(bs[j]);
    }
  }

  method advance() {
    this.vel = this.vel + this.sum * 0.001;
    this.pos = this.pos + this.count * 0.0001;
  }
}

func forces(bodies: Body[], nb: int, ll: int) {
  for i in 0..nb {
    bodies[i].interactions(bodies, nb, ll, i);
  }
}

func advanceall(bodies: Body[], nb: int) {
  for i in 0..nb {
    bodies[i].advance();
  }
}

// treebuild is the serial section: rebuilding the spatial tree. The
// accumulation into a captured local keeps it serial.
func treebuild(bodies: Body[], nb: int, units: int): float {
  let t: float = 0.0;
  for i in 0..nb {
    work(units);
    t = t + noise(i);
  }
  return t;
}

func main() {
  let bodies: Body[] = new Body[nbodies];
  for i in 0..nbodies {
    bodies[i] = new Body();
    bodies[i].pos = noise(i) * 10.0;
    bodies[i].vel = noise(i + 1000000) * 0.1;
  }
  let tsum: float = 0.0;
  for pass in 0..npasses {
    tsum = tsum + treebuild(bodies, nbodies, serialwork);
    forces(bodies, nbodies, listlen);
    advanceall(bodies, nbodies);
  }
  let s: float = 0.0;
  let c: float = 0.0;
  for i in 0..nbodies {
    s = s + bodies[i].sum;
    c = c + bodies[i].count;
  }
  print s;
  print c;
  print tsum;
}
`

// Water is the OBL source of the Water miniature.
const Water = `
// Water: liquid-state molecular dynamics (miniature).
extern force(a: float, b: float): float cost 60000;
extern term(a: float, b: float): float cost 20000;
extern noise(i: int): float cost 60;
extern work(n: int) cost 0;

param nmol: int = 384;
param nsteps: int = 2;
param energydepth: int = 2;
param serialwork: int = 30000;

class Acc {
  sum: float;
}

class Mol {
  pos: float;
  fx: float;
  fy: float;
  fz: float;

  // pair computes the intermolecular forces of one molecule pair and
  // accumulates three components on each molecule (INTERF).
  method pair(o: Mol) {
    let f: float = force(this.pos, o.pos);
    this.fx = this.fx + f;
    this.fy = this.fy + f * 0.5;
    this.fz = this.fz + f * 0.25;
    o.fx = o.fx - f;
    o.fy = o.fy - f * 0.5;
    o.fz = o.fz - f * 0.25;
  }

  // pot_pair accumulates the pair's potential energy into the global
  // accumulator (POTENG).
  method pot_pair(o: Mol, acc: Acc, depth: int) {
    let e: float = energy(this.pos, o.pos, depth);
    acc.sum = acc.sum + e;
  }
}

// energy is a recursive series expansion of the pair potential; the
// recursion is what makes the Bounded policy decline to enlarge any
// critical region that would contain it.
func energy(a: float, b: float, k: int): float {
  if k <= 0 {
    return term(a, b);
  }
  return term(a, b) * 0.5 + energy(a, b, k - 1);
}

func interf(ms: Mol[], nm: int) {
  for i in 0..nm {
    for j in i + 1..nm {
      ms[i].pair(ms[j]);
    }
  }
}

func poteng(ms: Mol[], nm: int, acc: Acc, depth: int) {
  for i in 0..nm {
    for j in i + 1..nm {
      ms[i].pot_pair(ms[j], acc, depth);
    }
  }
}

// kinetic is the serial section between the parallel phases.
func kinetic(ms: Mol[], nm: int, units: int): float {
  let t: float = 0.0;
  for i in 0..nm {
    work(units);
    t = t + ms[i].fx * 0.001;
  }
  return t;
}

func main() {
  let ms: Mol[] = new Mol[nmol];
  for i in 0..nmol {
    ms[i] = new Mol();
    ms[i].pos = noise(i) * 6.0;
  }
  let acc: Acc = new Acc();
  let ke: float = 0.0;
  for step in 0..nsteps {
    interf(ms, nmol);
    ke = ke + kinetic(ms, nmol, serialwork);
    poteng(ms, nmol, acc, energydepth);
  }
  let fsum: float = 0.0;
  for i in 0..nmol {
    fsum = fsum + ms[i].fx + ms[i].fy + ms[i].fz;
  }
  print fsum;
  print acc.sum;
  print ke;
}
`

// String is the OBL source of the String miniature (seismic tomography:
// building a velocity model of the geology between two oil wells).
const String = `
// String: cross-well seismic tomography (miniature).
extern term(a: float, b: float): float cost 35000;
extern noise(i: int): float cost 60;
extern work(n: int) cost 0;

param gridside: int = 40;
param nrays: int = 1024;
param pathlen: int = 64;
param nrounds: int = 2;
param serialwork: int = 30000;

class Cell {
  slowness: float;
  resid: float;
  hits: float;

  // bump back-projects one ray's residual contribution onto the cell.
  method bump(d: float) {
    this.resid = this.resid + d;
    this.hits = this.hits + 1.0;
  }
}

class Ray {
  src: float;
  rcv: float;

  // advancecell is the recursive ray-stepping routine (refraction search);
  // its recursion bounds the regions the Bounded policy will build.
  method advancecell(k: int, g: int, depth: int): int {
    if depth <= 0 {
      let c: int = (k * 13 + 7) % (g * g);
      return c;
    }
    return this.advancecell(k + 1, g, depth - 1);
  }

  method project(cells: Cell[], g: int, plen: int, me: int) {
    for k in 0..plen {
      let c: int = this.advancecell(me * 29 + k * 11, g, 2);
      let d: float = term(this.src, this.rcv + tofloat(k));
      cells[c].bump(d);
    }
  }
}

func backproject(rays: Ray[], cells: Cell[], g: int, plen: int, nr: int) {
  for i in 0..nr {
    rays[i].project(cells, g, plen, i);
  }
}

// smooth is the serial regularization pass between rounds.
func smooth(cells: Cell[], nc: int, units: int): float {
  let t: float = 0.0;
  for i in 0..nc {
    work(units);
    t = t + cells[i].resid * 0.0001;
  }
  return t;
}

func main() {
  let nc: int = gridside * gridside;
  let cells: Cell[] = new Cell[nc];
  for i in 0..nc {
    cells[i] = new Cell();
    cells[i].slowness = 1.0 + noise(i) * 0.1;
  }
  let rays: Ray[] = new Ray[nrays];
  for i in 0..nrays {
    rays[i] = new Ray();
    rays[i].src = noise(i * 3) * 4.0;
    rays[i].rcv = noise(i * 3 + 1) * 4.0;
  }
  let sm: float = 0.0;
  for round in 0..nrounds {
    backproject(rays, cells, gridside, pathlen, nrays);
    sm = sm + smooth(cells, nc, serialwork);
  }
  let r: float = 0.0;
  let h: float = 0.0;
  for i in 0..nc {
    r = r + cells[i].resid;
    h = h + cells[i].hits;
  }
  print r;
  print h;
  print sm;
}
`

// App names.
const (
	NameBarnesHut = "barneshut"
	NameWater     = "water"
	NameString    = "string"
)

// Names lists the applications in the paper's order.
var Names = []string{NameBarnesHut, NameWater, NameString}

// Source returns the OBL source of the named application.
func Source(name string) (string, error) {
	switch name {
	case NameBarnesHut:
		return BarnesHut, nil
	case NameWater:
		return Water, nil
	case NameString:
		return String, nil
	default:
		return "", fmt.Errorf("apps: unknown application %q (have %v)", name, Names)
	}
}

// Compile compiles the named application.
func Compile(name string) (*oblc.Compiled, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	c, err := oblc.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", name, err)
	}
	return c, nil
}

// CompileWithSpecs compiles the named application with generated policy
// versions registered for every polgen spec, beyond the paper's three.
func CompileWithSpecs(name string, specs []polgen.Spec) (*oblc.Compiled, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	c, err := oblc.CompileWithSpecs(src, specs)
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", name, err)
	}
	return c, nil
}

// TestParams returns small input presets that keep unit-test runs fast.
func TestParams(name string) map[string]int64 {
	switch name {
	case NameBarnesHut:
		return map[string]int64{"nbodies": 64, "listlen": 24, "interwork": 20000, "npasses": 1, "serialwork": 4000}
	case NameWater:
		return map[string]int64{"nmol": 48, "nsteps": 1, "serialwork": 4000}
	case NameString:
		return map[string]int64{"gridside": 10, "nrays": 64, "pathlen": 20, "nrounds": 1, "serialwork": 4000}
	default:
		return nil
	}
}

// LargeParams returns the sampled-simulation tier presets: parallel
// sections an order of magnitude longer than BenchParams, sized so
// exhaustive simulation is expensive enough that interval sampling's
// wall-clock savings are measurable, while section trip counts comfortably
// exceed the sampler's warm-up (windows plus gap).
func LargeParams(name string) map[string]int64 {
	switch name {
	case NameBarnesHut:
		return map[string]int64{"nbodies": 8192, "listlen": 24, "interwork": 20000, "npasses": 1, "serialwork": 10000}
	case NameWater:
		return map[string]int64{"nmol": 1024, "nsteps": 1, "energydepth": 2, "serialwork": 10000}
	case NameString:
		return map[string]int64{"gridside": 40, "nrays": 4096, "pathlen": 48, "nrounds": 1, "serialwork": 10000}
	default:
		return nil
	}
}

// BenchParams returns the evaluation-scale presets used to regenerate the
// paper's tables and figures.
func BenchParams(name string) map[string]int64 {
	switch name {
	case NameBarnesHut:
		return map[string]int64{"nbodies": 2048, "listlen": 64, "interwork": 20000, "npasses": 2, "serialwork": 50000}
	case NameWater:
		return map[string]int64{"nmol": 384, "nsteps": 2, "serialwork": 30000}
	case NameString:
		return map[string]int64{"gridside": 40, "nrays": 1024, "pathlen": 64, "nrounds": 2, "serialwork": 30000}
	default:
		return nil
	}
}

// SectionNames returns the application's parallel section names in
// execution order.
func SectionNames(name string) []string {
	switch name {
	case NameBarnesHut:
		return []string{"FORCES", "ADVANCEALL"}
	case NameWater:
		return []string{"INTERF", "POTENG"}
	case NameString:
		return []string{"BACKPROJECT"}
	default:
		return nil
	}
}
