package apps

import (
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/obl/polgen"
	"repro/internal/simmach"
)

// TestGeneratedVersionsCorrectness runs every generated policy version of
// Barnes-Hut against the serial baseline: chunked schedules and coarsened
// regions must not change the computed results.
func TestGeneratedVersionsCorrectness(t *testing.T) {
	specs := polgen.Space()
	c, err := CompileWithSpecs(NameBarnesHut, specs)
	if err != nil {
		t.Fatal(err)
	}
	params := TestParams(NameBarnesHut)
	sres, err := interp.Run(c.Serial, interp.Options{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	want := parseFloats(t, sres.Output)
	for _, spec := range specs {
		res, err := interp.Run(c.Parallel, interp.Options{
			Procs: 4, Policy: spec.Name(), Params: params,
		})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		got := parseFloats(t, res.Output)
		if len(got) != len(want) {
			t.Fatalf("%s: output %v, want %v", spec.Name(), got, want)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Errorf("%s: out[%d] = %v, want %v", spec.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestChunkedVersionDeterminismAcrossEnginesAndProcs pins the byte-identity
// guarantee for chunk-scheduled versions: both execution engines and
// repeated runs produce identical outputs at every processor count.
func TestChunkedVersionDeterminismAcrossEnginesAndProcs(t *testing.T) {
	spec := polgen.Spec{Coarsen: 2, Lift: false, Chunk: 4}
	c, err := CompileWithSpecs(NameWater, []polgen.Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	params := TestParams(NameWater)
	for _, procs := range []int{1, 3, 8} {
		var first string
		for _, engine := range []string{interp.EngineVM, interp.EngineInterp} {
			for rep := 0; rep < 2; rep++ {
				res, err := interp.Run(c.Parallel, interp.Options{
					Procs: procs, Policy: spec.Name(), Params: params, Engine: engine,
				})
				if err != nil {
					t.Fatalf("procs %d engine %s: %v", procs, engine, err)
				}
				out := flatten(res.Output)
				if first == "" {
					first = out
				} else if out != first {
					t.Fatalf("procs %d engine %s rep %d: output diverged:\n%s\nvs\n%s",
						procs, engine, rep, out, first)
				}
			}
		}
	}
}

// TestDynamicFeedbackOverGeneratedSpace runs dynamic feedback over the full
// generated space plus the paper's policies: the controller must converge
// and the results must match serial.
func TestDynamicFeedbackOverGeneratedSpace(t *testing.T) {
	specs := polgen.Space()
	c, err := CompileWithSpecs(NameWater, specs)
	if err != nil {
		t.Fatal(err)
	}
	params := TestParams(NameWater)
	sres, err := interp.Run(c.Serial, interp.Options{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	want := parseFloats(t, sres.Output)
	res, err := interp.Run(c.Parallel, interp.Options{
		Procs: 8, Policy: interp.PolicyDynamic, Params: params,
		TargetSampling: simmach.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := parseFloats(t, res.Output)
	if len(got) != len(want) {
		t.Fatalf("output %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func flatten(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
