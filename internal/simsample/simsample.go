// Package simsample turns a sampled simulation run (interp.Options.Sample)
// into a full-run estimate with confidence intervals, and validates the
// estimator against exhaustive ground truth.
//
// The sampled run itself already extrapolates: fast-forward gaps charge
// synthetic aggregates at trend rates, so the Result's virtual time and
// counters are point estimates of the exhaustive run's. What this package
// adds is an error model. For every detailed window w_j (beyond the first
// two of a section execution) the trend through w_{j-2}, w_{j-1} yields a
// prediction of w_j's per-iteration rates; the prediction residuals are
// exactly the errors the sampler commits when it charges a gap, measured
// on iterations where ground truth is known. Treating the mean residual as
// the systematic per-iteration error of the extrapolation, a Student-t
// interval on that mean, scaled by the number of skipped iterations,
// bounds each metric's total extrapolation error:
//
//	half(section) = S · t_{k-1,0.975} · sd(residuals) / sqrt(k)
//
// summed over sections (errors in different sections add in the worst
// case). Virtual time is the critical path, so its half-width is the busy
// half-width divided by the processor count, and every half-width is
// floored at RelFloor of the estimate (prediction residuals understate the
// error when a workload is so regular that they are near zero —
// cross-window boundary effects still perturb the charges slightly).
package simsample

import (
	"fmt"
	"math"
	"time"

	"repro/internal/interp"
	"repro/internal/obl/ir"
)

// MetricNames lists the estimated metrics in report order.
var MetricNames = []string{
	"time_ns", "busy_ns", "lock_time_ns", "wait_time_ns", "acquires", "failed_acquires",
}

// Config tunes the error model.
type Config struct {
	// Confidence is the two-sided interval confidence; only 0.95 is
	// supported (0 selects it).
	Confidence float64 `json:"confidence"`
	// RelFloor floors each interval half-width at this fraction of the
	// estimate (default 0.02).
	RelFloor float64 `json:"rel_floor"`
}

func (c Config) withDefaults() (Config, error) {
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Confidence != 0.95 {
		return c, fmt.Errorf("simsample: only 95%% confidence is supported (have %v)", c.Confidence)
	}
	if c.RelFloor <= 0 {
		c.RelFloor = 0.02
	}
	return c, nil
}

// MetricEstimate is one metric's point estimate and confidence interval.
type MetricEstimate struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
}

// Estimate is a sampled run's extrapolated full-run metrics.
type Estimate struct {
	Metrics       []MetricEstimate `json:"metrics"`
	DetailedIters int64            `json:"detailed_iters"`
	SkippedIters  int64            `json:"skipped_iters"`
	Windows       int              `json:"windows"`
	Gaps          int              `json:"gaps"`
	Rollbacks     int              `json:"rollbacks"`
}

// Metric returns the named estimate, or nil.
func (e *Estimate) Metric(name string) *MetricEstimate {
	for i := range e.Metrics {
		if e.Metrics[i].Name == name {
			return &e.Metrics[i]
		}
	}
	return nil
}

// tQuant975 holds the 0.975 quantile of Student's t distribution by
// degrees of freedom 1..30; beyond 30 the normal quantile is used.
var tQuant975 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tQuant(df int) float64 {
	if df < 1 {
		// One residual: no spread information. The caller substitutes the
		// residual magnitude for sd; use the df=1 quantile conservatively.
		return tQuant975[0]
	}
	if df <= len(tQuant975) {
		return tQuant975[df-1]
	}
	return 1.960
}

// nMetrics counts the counter-level metrics (all but time_ns, whose
// interval derives from busy_ns).
const nMetrics = 5

// metricRates extracts a window's per-iteration rates in model order
// (busy, lock, wait, acquires, failed).
func metricRates(w interp.WindowStat) [nMetrics]float64 {
	n := float64(w.Iters)
	return [nMetrics]float64{
		float64(w.Busy) / n,
		float64(w.LockTime) / n,
		float64(w.WaitTime) / n,
		float64(w.Acquires) / n,
		float64(w.FailedAcquires) / n,
	}
}

func windowCenter(w interp.WindowStat) float64 {
	return float64(w.Start) + float64(w.Iters-1)/2
}

// sectionHalves computes one section's contribution to each metric's
// half-width from its windows' trend-prediction residuals.
func sectionHalves(sec *interp.SectionSampling) [nMetrics]float64 {
	var halves [nMetrics]float64
	if sec.SkippedIters == 0 {
		return halves
	}
	// Collect residuals per metric: prediction of window j from the trend
	// through windows j-2, j-1 of the same section execution.
	var res [nMetrics][]float64
	byExec := map[int][]interp.WindowStat{}
	var execs []int
	for _, w := range sec.Windows {
		if _, ok := byExec[w.Exec]; !ok {
			execs = append(execs, w.Exec)
		}
		byExec[w.Exec] = append(byExec[w.Exec], w)
	}
	for _, e := range execs {
		ws := byExec[e]
		for j := 2; j < len(ws); j++ {
			r1, r2 := metricRates(ws[j-2]), metricRates(ws[j-1])
			c1, c2 := windowCenter(ws[j-2]), windowCenter(ws[j-1])
			got := metricRates(ws[j])
			x := windowCenter(ws[j])
			for m := 0; m < nMetrics; m++ {
				pred := r2[m]
				if c2 != c1 {
					pred = r2[m] + (r2[m]-r1[m])*(x-c2)/(c2-c1)
				}
				res[m] = append(res[m], got[m]-pred)
			}
		}
	}
	s := float64(sec.SkippedIters)
	for m := 0; m < nMetrics; m++ {
		k := len(res[m])
		switch {
		case k == 0:
			// No residuals at all (a section that gapped without ever
			// validating cannot occur: every gap is followed by a window);
			// leave zero and let the relative floor cover it.
		case k == 1:
			halves[m] = s * tQuant(1) * math.Abs(res[m][0])
		default:
			var mean float64
			for _, r := range res[m] {
				mean += r
			}
			mean /= float64(k)
			var ss float64
			for _, r := range res[m] {
				d := r - mean
				ss += d * d
			}
			sd := math.Sqrt(ss / float64(k-1))
			halves[m] = s * tQuant(k-1) * sd / math.Sqrt(float64(k))
		}
	}
	return halves
}

// FromResult builds the estimate of a sampled run's full metrics. procs is
// the run's processor count (Options.Procs).
func FromResult(res *interp.Result, procs int, cfg Config) (*Estimate, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if res.Sampling == nil {
		return nil, fmt.Errorf("simsample: result has no sampling info (was the run sampled?)")
	}
	if procs < 1 {
		procs = 1
	}
	var halves [nMetrics]float64
	est := &Estimate{
		DetailedIters: res.Sampling.DetailedIters,
		SkippedIters:  res.Sampling.SkippedIters,
		Rollbacks:     res.Sampling.Rollbacks,
	}
	for _, sec := range res.Sampling.Sections {
		h := sectionHalves(sec)
		for m := 0; m < nMetrics; m++ {
			halves[m] += h[m]
		}
		est.Windows += len(sec.Windows)
		est.Gaps += sec.Gaps
	}
	values := []float64{
		float64(res.Time),
		float64(res.Counters.Busy),
		float64(res.Counters.LockTime),
		float64(res.Counters.WaitTime),
		float64(res.Counters.Acquires),
		float64(res.Counters.FailedAcquires),
	}
	// time_ns inherits the busy half-width spread over the processors (the
	// critical path absorbs 1/procs of the total busy error).
	allHalves := append([]float64{halves[0] / float64(procs)}, halves[:]...)
	for i, name := range MetricNames {
		v := values[i]
		half := allHalves[i]
		if floor := cfg.RelFloor * math.Abs(v); half < floor {
			half = floor
		}
		est.Metrics = append(est.Metrics, MetricEstimate{
			Name: name, Value: v, Lo: v - half, Hi: v + half,
		})
	}
	return est, nil
}

// GroundTruth extracts the exhaustive run's values of the estimated
// metrics, keyed by metric name.
func GroundTruth(res *interp.Result) map[string]float64 {
	return map[string]float64{
		"time_ns":         float64(res.Time),
		"busy_ns":         float64(res.Counters.Busy),
		"lock_time_ns":    float64(res.Counters.LockTime),
		"wait_time_ns":    float64(res.Counters.WaitTime),
		"acquires":        float64(res.Counters.Acquires),
		"failed_acquires": float64(res.Counters.FailedAcquires),
	}
}

// Report is the outcome of validating one sampled run against its
// exhaustive ground truth.
type Report struct {
	Estimate *Estimate `json:"estimate"`
	// Ground holds the exhaustive run's metric values; Contained records,
	// per metric, whether the ground truth fell inside the interval.
	Ground       map[string]float64 `json:"ground"`
	Contained    map[string]bool    `json:"contained"`
	AllContained bool               `json:"all_contained"`
	// Wall-clock cost of the two runs and the resulting speedup.
	SampledWallNS    int64   `json:"sampled_wall_ns"`
	ExhaustiveWallNS int64   `json:"exhaustive_wall_ns"`
	Speedup          float64 `json:"speedup"`
	// SkipRatio is the fraction of iterations fast-forwarded.
	SkipRatio float64 `json:"skip_ratio"`
}

// Check fills the containment verdicts of est against ground truth.
func Check(est *Estimate, ground map[string]float64) (map[string]bool, bool) {
	contained := map[string]bool{}
	all := true
	for _, m := range est.Metrics {
		g, have := ground[m.Name]
		in := have && g >= m.Lo && g <= m.Hi
		contained[m.Name] = in
		if !in {
			all = false
		}
	}
	return contained, all
}

// Validate runs prog sampled (opts.Sample must be set) and exhaustively,
// builds the estimate, and reports per-metric containment and the
// wall-clock speedup. Both runs execute cold — no simulation cache is
// consulted — so the speedup is the genuine cost ratio.
func Validate(prog *ir.Program, opts interp.Options, cfg Config) (*Report, error) {
	if opts.Sample == nil {
		return nil, fmt.Errorf("simsample: Validate needs Options.Sample")
	}
	t0 := time.Now() //dfvet:allow walltime measures real sampled-run cost for the speedup report
	sampled, err := interp.Run(prog, opts)
	if err != nil {
		return nil, fmt.Errorf("simsample: sampled run: %w", err)
	}
	sampledWall := time.Since(t0) //dfvet:allow walltime measures real sampled-run cost for the speedup report
	est, err := FromResult(sampled, opts.Procs, cfg)
	if err != nil {
		return nil, err
	}
	exOpts := opts
	exOpts.Sample = nil
	t1 := time.Now() //dfvet:allow walltime measures real exhaustive-run cost for the speedup report
	exact, err := interp.Run(prog, exOpts)
	if err != nil {
		return nil, fmt.Errorf("simsample: exhaustive run: %w", err)
	}
	exactWall := time.Since(t1) //dfvet:allow walltime measures real exhaustive-run cost for the speedup report
	ground := GroundTruth(exact)
	contained, all := Check(est, ground)
	rep := &Report{
		Estimate: est, Ground: ground,
		Contained: contained, AllContained: all,
		SampledWallNS:    sampledWall.Nanoseconds(),
		ExhaustiveWallNS: exactWall.Nanoseconds(),
	}
	if sampledWall > 0 {
		rep.Speedup = float64(exactWall) / float64(sampledWall)
	}
	if tot := est.DetailedIters + est.SkippedIters; tot > 0 {
		rep.SkipRatio = float64(est.SkippedIters) / float64(tot)
	}
	return rep, nil
}
