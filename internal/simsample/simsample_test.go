package simsample

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/interp"
	"repro/internal/simmach"
	"repro/oblc"
)

// stepSrc has a per-iteration cost step at cut, exercising the rollback
// path; with the default cut the workload is uniform.
const stepSrc = `
extern work(n: int) cost 0;
extern noise(i: int): float cost 60;

param total: int = 4096;
param cut: int = 99999999;
param light: int = 300;
param heavy: int = 4000;

class Slot {
  sum: float;
  count: float;
  method step(me: int, cut: int, light: int, heavy: int) {
    if me < cut {
      work(light);
    } else {
      work(heavy);
    }
    this.sum = this.sum + noise(me);
    this.count = this.count + 1.0;
  }
}

func sweep(slots: Slot[], n: int, cut: int, light: int, heavy: int) {
  for i in 0..n {
    slots[i].step(i, cut, light, heavy);
  }
}

func main() {
  let slots: Slot[] = new Slot[total];
  for i in 0..total {
    slots[i] = new Slot();
  }
  sweep(slots, total, cut, light, heavy);
  let s: float = 0.0;
  for i in 0..total {
    s = s + slots[i].sum + slots[i].count;
  }
  print s;
}
`

func testSpec() *interp.SampleSpec {
	return &interp.SampleSpec{WindowIters: 16, GapIters: 64, MinSectionIters: 64}
}

// TestValidateContainment checks the end-to-end promise on a matrix of
// workloads: every ground-truth metric lands inside its interval, and a
// majority of iterations are skipped.
func TestValidateContainment(t *testing.T) {
	appParams := map[string]map[string]int64{
		apps.NameBarnesHut: {"nbodies": 512, "listlen": 4, "interwork": 2000, "npasses": 1, "serialwork": 500},
		apps.NameWater:     {"nmol": 96, "nsteps": 1, "energydepth": 1, "serialwork": 500},
		apps.NameString:    {"gridside": 12, "nrays": 512, "pathlen": 4, "nrounds": 1, "serialwork": 500},
	}
	cases := []struct {
		label  string
		src    string
		params map[string]int64
	}{
		{"uniform", stepSrc, nil},
		{"step", stepSrc, map[string]int64{"cut": 1536}},
	}
	for _, name := range apps.Names {
		src, err := apps.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, struct {
			label  string
			src    string
			params map[string]int64
		}{name, src, appParams[name]})
	}
	for _, tc := range cases {
		c, err := oblc.Compile(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Validate(c.Parallel, interp.Options{
			Procs: 8, Policy: "bounded", Params: tc.params, Sample: testSpec(),
		}, Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		if !rep.AllContained {
			for _, m := range rep.Estimate.Metrics {
				t.Logf("%s: %s est %.0f [%.0f, %.0f] ground %.0f contained=%v",
					tc.label, m.Name, m.Value, m.Lo, m.Hi, rep.Ground[m.Name], rep.Contained[m.Name])
			}
			t.Errorf("%s: ground truth escaped a confidence interval", tc.label)
		}
		if rep.SkipRatio < 0.4 {
			t.Errorf("%s: skip ratio %.2f < 0.4; sampling barely engaged", tc.label, rep.SkipRatio)
		}
	}
}

// TestFromResultErrors pins the input validation.
func TestFromResultErrors(t *testing.T) {
	if _, err := FromResult(&interp.Result{}, 4, Config{}); err == nil {
		t.Error("unsampled result accepted")
	}
	if _, err := FromResult(&interp.Result{Sampling: &interp.SamplingInfo{}}, 4, Config{Confidence: 0.9}); err == nil {
		t.Error("unsupported confidence accepted")
	}
	if _, err := Validate(nil, interp.Options{}, Config{}); err == nil {
		t.Error("Validate without Sample accepted")
	}
}

// TestEstimateIntervalShape checks the error model directly on synthetic
// windows: noisy residuals must widen the interval above the relative
// floor, and the floor must hold when residuals vanish.
func TestEstimateIntervalShape(t *testing.T) {
	mkRes := func(busies []int64) *interp.Result {
		sec := &interp.SectionSampling{Name: "S", SkippedIters: 1000}
		for i, b := range busies {
			sec.Windows = append(sec.Windows, interp.WindowStat{
				Exec: 0, Start: int64(i * 20), Iters: 10, Busy: simmach.Time(b),
			})
		}
		return &interp.Result{
			Time: 1_000_000, Sampling: &interp.SamplingInfo{Sections: []*interp.SectionSampling{sec}},
		}
	}
	flat, err := FromResult(mkRes([]int64{1000, 1000, 1000, 1000, 1000}), 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := FromResult(mkRes([]int64{1000, 2000, 800, 2400, 600}), 4, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fm, nm := flat.Metric("time_ns"), noisy.Metric("time_ns")
	if fm == nil || nm == nil {
		t.Fatal("time_ns metric missing")
	}
	floorHalf := 0.02 * fm.Value
	if got := fm.Hi - fm.Value; got != floorHalf {
		t.Errorf("flat windows: half = %.0f, want floor %.0f", got, floorHalf)
	}
	if got := nm.Hi - nm.Value; got <= floorHalf {
		t.Errorf("noisy windows: half = %.0f did not exceed the floor %.0f", got, floorHalf)
	}
}
