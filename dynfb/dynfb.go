// Package dynfb is a reusable, real-time implementation of dynamic
// feedback (Diniz & Rinard, PLDI 1997) for Go programs.
//
// Dynamic feedback lets a computation choose, at run time, among several
// implementations ("variants") of the same parallel section. The generated
// schedule alternately performs sampling phases — each variant runs for a
// fixed target sampling interval while its overhead is measured — and
// production phases, which run the variant with the least measured
// overhead; the section periodically resamples to adapt to changes in the
// environment.
//
// A Section distributes loop iterations [lo, hi) over a pool of workers.
// Each completed iteration is a potential switch point: the worker polls
// the clock, and when the current interval has expired all workers
// rendezvous at a barrier and switch variants synchronously, so that every
// measurement reflects exactly one variant (§4.1 of the paper). Overhead is
// measured exactly as the paper specifies (§4.3): locking overhead (counted
// instrumented mutex acquisitions times the calibrated cost of an
// acquire/release pair), plus waiting overhead (time spent spinning on held
// mutexes), divided by the total execution time.
//
// Typical use:
//
//	sec, _ := dynfb.NewSection(dynfb.Config{Workers: 8},
//	    dynfb.Variant{Name: "fine", Body: fineGrained},
//	    dynfb.Variant{Name: "coarse", Body: coarseGrained},
//	)
//	sec.Run(0, len(items))      // adaptively picks the best variant
//
// Variant bodies receive a Ctx whose Lock/Unlock operate on instrumented
// spin mutexes (NewMutex); using them is what makes the overhead
// measurement meaningful. Bodies may also add explicit overhead hints with
// Ctx.AddOverhead for non-lock-based costs.
package dynfb

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// CutoffComponent re-exports the early cut-off components of §4.5.
type CutoffComponent int

// Cutoff components: a variant whose declared component measures near zero
// during its sample cannot be significantly beaten, so the sampling phase
// stops early (requires Config.EarlyCutoff).
const (
	CutoffNone    = CutoffComponent(core.CutoffNone)
	CutoffLocking = CutoffComponent(core.CutoffLocking)
	CutoffWaiting = CutoffComponent(core.CutoffWaiting)
)

// Variant is one implementation of the section body.
type Variant struct {
	// Name identifies the variant in reports.
	Name string
	// Body executes one iteration. It must be safe for concurrent
	// invocation from multiple workers.
	Body func(ctx *Ctx, iter int)
	// Cutoff optionally declares the §4.5 early cut-off component.
	Cutoff CutoffComponent
}

// Config parameterizes a Section.
type Config struct {
	// Workers is the number of worker goroutines. Default GOMAXPROCS.
	Workers int
	// TargetSampling is the target sampling interval. Default 10ms.
	TargetSampling time.Duration
	// TargetProduction is the target production interval. Default 10s.
	TargetProduction time.Duration
	// EarlyCutoff enables the §4.5 early cut-off.
	EarlyCutoff bool
	// OrderByHistory samples the previous winner first and skips the rest
	// of the sampling phase while it stays acceptable (§4.5).
	OrderByHistory bool
	// SpanExecutions lets sampling and production intervals span multiple
	// Run calls (§4.4 extension) instead of resampling at every Run.
	SpanExecutions bool
	// AutoTuneProduction retunes the production interval at each production
	// entry using the §5 analysis over the observed history (eq. 9).
	AutoTuneProduction bool
	// LockPairCost overrides the calibrated cost of one uncontended
	// acquire/release pair, used to convert acquisition counts into
	// locking overhead time. Zero means calibrate at section creation.
	LockPairCost time.Duration
}

// Sample is one completed measurement interval.
type Sample struct {
	Kind            string // "sampling", "production" or "partial"
	Variant         int
	Name            string
	Start, End      time.Duration // offsets from section creation
	Overhead        float64
	LockingOverhead float64
	WaitingOverhead float64
}

// Stats summarizes one variant's history.
type Stats struct {
	Name         string
	TimesSampled int
	TimesChosen  int
	MeanOverhead float64
	LastOverhead float64
}

// Mutex is an instrumented spin lock. It must be created by
// Section.NewMutex and locked through Ctx.Lock so acquisitions and
// spinning are charged to the measuring worker.
type Mutex struct {
	state int32
}

// meter accumulates one worker's instrumentation for the current phase
// (§4.3). Only that worker writes it between barriers.
type meter struct {
	acquires int64
	fails    int64
	waitNs   int64
	busyNs   int64
	extraNs  int64
	_        [2]int64 // pad to reduce false sharing
}

// Ctx is the per-worker context passed to variant bodies.
type Ctx struct {
	// Worker is the worker index, in [0, Workers).
	Worker int
	m      *meter
}

// Lock acquires m, spinning if necessary and charging failed attempts and
// waiting time to the measurement (§4.3's waiting overhead).
func (c *Ctx) Lock(m *Mutex) {
	if atomic.CompareAndSwapInt32(&m.state, 0, 1) {
		c.m.acquires++
		return
	}
	start := time.Now()
	spins := 0
	for {
		if atomic.LoadInt32(&m.state) == 0 && atomic.CompareAndSwapInt32(&m.state, 0, 1) {
			break
		}
		c.m.fails++
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
	c.m.acquires++
	c.m.waitNs += time.Since(start).Nanoseconds()
}

// Unlock releases m.
func (c *Ctx) Unlock(m *Mutex) {
	atomic.StoreInt32(&m.state, 0)
}

// AddOverhead charges d of explicit overhead to the current measurement,
// for costs that are not expressed through instrumented locks (e.g. retry
// loops, redundant recomputation).
func (c *Ctx) AddOverhead(d time.Duration) {
	c.m.extraNs += d.Nanoseconds()
}

// Section is a multi-variant parallel section driven by dynamic feedback.
type Section struct {
	cfg      Config
	variants []Variant
	ctl      *core.Controller
	epoch    time.Time
	pairCost time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	arrived  int
	gen      uint64
	current  int32 // active variant index
	deadline int64 // current phase deadline, nanoseconds since epoch
	next     int64 // iteration claim counter
	hi       int64
	done     bool

	meters []meter
	snaps  []meter
}

// NewSection creates a section with the given variants.
func NewSection(cfg Config, variants ...Variant) (*Section, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("dynfb: at least one variant is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TargetSampling <= 0 {
		cfg.TargetSampling = 10 * time.Millisecond
	}
	if cfg.TargetProduction <= 0 {
		cfg.TargetProduction = 10 * time.Second
	}
	policies := make([]core.PolicyInfo, len(variants))
	for i, v := range variants {
		if v.Body == nil {
			return nil, fmt.Errorf("dynfb: variant %d (%s) has no body", i, v.Name)
		}
		name := v.Name
		if name == "" {
			name = fmt.Sprintf("variant%d", i)
		}
		policies[i] = core.PolicyInfo{Name: name, Cutoff: core.CutoffComponent(v.Cutoff)}
	}
	ctl, err := core.NewController(core.Config{
		Policies:           policies,
		TargetSampling:     core.Nanos(cfg.TargetSampling),
		TargetProduction:   core.Nanos(cfg.TargetProduction),
		EarlyCutoff:        cfg.EarlyCutoff,
		OrderByHistory:     cfg.OrderByHistory,
		SpanExecutions:     cfg.SpanExecutions,
		AutoTuneProduction: cfg.AutoTuneProduction,
	})
	if err != nil {
		return nil, fmt.Errorf("dynfb: %w", err)
	}
	s := &Section{
		cfg:      cfg,
		variants: variants,
		ctl:      ctl,
		epoch:    time.Now(),
		pairCost: cfg.LockPairCost,
		meters:   make([]meter, cfg.Workers),
		snaps:    make([]meter, cfg.Workers),
	}
	s.cond = sync.NewCond(&s.mu)
	if s.pairCost <= 0 {
		s.pairCost = calibrateLockPair()
	}
	return s, nil
}

// calibrateLockPair times uncontended instrumented lock/unlock pairs.
func calibrateLockPair() time.Duration {
	var m Mutex
	ctx := &Ctx{m: &meter{}}
	const n = 4096
	start := time.Now()
	for i := 0; i < n; i++ {
		ctx.Lock(&m)
		ctx.Unlock(&m)
	}
	d := time.Since(start) / n
	if d <= 0 {
		d = 20 * time.Nanosecond
	}
	return d
}

// NewMutex creates an instrumented mutex.
func NewMutex() *Mutex { return &Mutex{} }

// NewMutex creates an instrumented mutex (convenience method).
func (s *Section) NewMutex() *Mutex { return NewMutex() }

// now returns the controller clock (nanoseconds since section creation).
func (s *Section) now() core.Nanos { return core.Nanos(time.Since(s.epoch)) }

// Run executes iterations [lo, hi) across the configured workers, choosing
// variants by dynamic feedback. It blocks until every iteration has
// completed. Run must not be called concurrently with itself on the same
// Section.
func (s *Section) Run(lo, hi int) {
	if hi <= lo {
		return
	}
	atomic.StoreInt64(&s.next, int64(lo))
	s.hi = int64(hi)
	s.done = false
	s.arrived = 0
	s.ctl.BeginExecution(s.now())
	atomic.StoreInt32(&s.current, int32(s.ctl.CurrentPolicy()))
	atomic.StoreInt64(&s.deadline, int64(s.ctl.Deadline()))
	for i := range s.meters {
		s.meters[i] = meter{}
		s.snaps[i] = meter{}
	}
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.worker(w)
		}(w)
	}
	wg.Wait()
}

// worker claims and executes iterations until the section completes.
func (s *Section) worker(w int) {
	ctx := &Ctx{Worker: w, m: &s.meters[w]}
	for {
		i := atomic.AddInt64(&s.next, 1) - 1
		if i >= s.hi {
			if s.rendezvous(w) {
				return
			}
			continue
		}
		variant := s.variants[atomic.LoadInt32(&s.current)]
		start := time.Now()
		variant.Body(ctx, int(i))
		ctx.m.busyNs += time.Since(start).Nanoseconds()
		// Potential switch point: poll the clock and test for interval
		// expiration (§4.1). The deadline is cached atomically so polling
		// never races with the controller transition under s.mu.
		if int64(s.now()) >= atomic.LoadInt64(&s.deadline) {
			if s.rendezvous(w) {
				return
			}
		}
	}
}

// rendezvous implements the synchronous switch barrier. The last worker to
// arrive performs the controller transition; the return value reports
// whether the section is complete.
func (s *Section) rendezvous(w int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.gen
	s.arrived++
	if s.arrived == s.cfg.Workers {
		s.arrived = 0
		s.gen++
		now := s.now()
		if atomic.LoadInt64(&s.next) >= s.hi {
			s.ctl.EndExecution(now, s.phaseDelta())
			s.done = true
		} else {
			s.ctl.CompletePhase(now, s.phaseDelta())
			atomic.StoreInt32(&s.current, int32(s.ctl.CurrentPolicy()))
			atomic.StoreInt64(&s.deadline, int64(s.ctl.Deadline()))
		}
		s.cond.Broadcast()
		return s.done
	}
	for gen == s.gen {
		s.cond.Wait()
	}
	return s.done
}

// phaseDelta aggregates the workers' instrumentation since the last phase
// boundary and resets the snapshots (§4.3).
func (s *Section) phaseDelta() core.Measurement {
	var m core.Measurement
	for i := range s.meters {
		cur := s.meters[i]
		prev := s.snaps[i]
		acq := cur.acquires - prev.acquires
		m.Acquires += acq
		m.FailedAcquires += cur.fails - prev.fails
		m.LockTime += core.Nanos(acq*s.pairCost.Nanoseconds() + (cur.extraNs - prev.extraNs))
		m.WaitTime += core.Nanos(cur.waitNs - prev.waitNs)
		m.ExecTime += core.Nanos(cur.busyNs - prev.busyNs)
		s.snaps[i] = cur
	}
	return m
}

// Current returns the index of the variant the section would run now.
func (s *Section) Current() int { return int(atomic.LoadInt32(&s.current)) }

// BestKnown returns the variant the controller currently believes best.
func (s *Section) BestKnown() int { return s.ctl.BestKnownPolicy() }

// LastChosen returns the variant most recently selected for a production
// phase, and whether any production phase has run yet. Unlike BestKnown it
// is not perturbed by a sampling round in progress.
func (s *Section) LastChosen() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctl.LastWinner()
}

// RecommendedProduction derives a production interval from the section's
// observed history using the paper's §5 analysis: the overhead drift rate
// is estimated from the samples, and eq. 9 gives the interval that
// minimizes the worst-case work deficit. The second result is false while
// the history is too thin.
func (s *Section) RecommendedProduction() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.ctl.RecommendProduction()
	return time.Duration(n), ok
}

// Samples returns the measurement history.
func (s *Section) Samples() []Sample {
	var out []Sample
	for _, c := range s.ctl.Samples() {
		out = append(out, Sample{
			Kind:            kindName(c.Kind),
			Variant:         c.Policy,
			Name:            s.ctl.PolicyName(c.Policy),
			Start:           time.Duration(c.Start),
			End:             time.Duration(c.End),
			Overhead:        c.Overhead,
			LockingOverhead: c.Meas.LockingOverhead(),
			WaitingOverhead: c.Meas.WaitingOverhead(),
		})
	}
	return out
}

func kindName(k core.SampleKind) string { return k.String() }

// VariantStats returns per-variant aggregates.
func (s *Section) VariantStats() []Stats {
	cs := s.ctl.Stats()
	out := make([]Stats, len(cs))
	for i, c := range cs {
		out[i] = Stats{
			Name:         s.ctl.PolicyName(i),
			TimesSampled: c.TimesSampled,
			TimesChosen:  c.TimesChosen,
			MeanOverhead: c.MeanOverhead(),
			LastOverhead: c.LastOverhead,
		}
	}
	return out
}
