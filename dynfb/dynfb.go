// Package dynfb is a reusable, real-time implementation of dynamic
// feedback (Diniz & Rinard, PLDI 1997) for Go programs.
//
// Dynamic feedback lets a computation choose, at run time, among several
// implementations ("variants") of the same parallel section. The generated
// schedule alternately performs sampling phases — each variant runs for a
// fixed target sampling interval while its overhead is measured — and
// production phases, which run the variant with the least measured
// overhead; the section periodically resamples to adapt to changes in the
// environment.
//
// A Section distributes loop iterations [lo, hi) over a pool of workers.
// Each completed iteration is a potential switch point: the worker polls
// the clock, and when the current interval has expired all workers
// rendezvous at a barrier and switch variants synchronously, so that every
// measurement reflects exactly one variant (§4.1 of the paper). Overhead is
// measured exactly as the paper specifies (§4.3): locking overhead (counted
// instrumented mutex acquisitions times the calibrated cost of an
// acquire/release pair), plus waiting overhead (time spent spinning on held
// mutexes), divided by the total execution time.
//
// Typical use:
//
//	sec, _ := dynfb.NewSection(dynfb.Config{Workers: 8},
//	    dynfb.Variant{Name: "fine", Body: fineGrained},
//	    dynfb.Variant{Name: "coarse", Body: coarseGrained},
//	)
//	sec.Run(0, len(items))      // adaptively picks the best variant
//
// Variant bodies receive a Ctx whose Lock/Unlock operate on instrumented
// spin mutexes (NewMutex); using them is what makes the overhead
// measurement meaningful. Bodies may also add explicit overhead hints with
// Ctx.AddOverhead for non-lock-based costs.
package dynfb

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/dynfb/store"
	"repro/internal/core"
)

// CutoffComponent re-exports the early cut-off components of §4.5.
type CutoffComponent int

// Cutoff components: a variant whose declared component measures near zero
// during its sample cannot be significantly beaten, so the sampling phase
// stops early (requires Config.EarlyCutoff).
const (
	CutoffNone    = CutoffComponent(core.CutoffNone)
	CutoffLocking = CutoffComponent(core.CutoffLocking)
	CutoffWaiting = CutoffComponent(core.CutoffWaiting)
)

// Variant is one implementation of the section body.
type Variant struct {
	// Name identifies the variant in reports.
	Name string
	// Body executes one iteration. It must be safe for concurrent
	// invocation from multiple workers.
	Body func(ctx *Ctx, iter int)
	// Cutoff optionally declares the §4.5 early cut-off component.
	Cutoff CutoffComponent
}

// Config parameterizes a Section.
type Config struct {
	// Workers is the number of worker goroutines. Default GOMAXPROCS.
	Workers int
	// TargetSampling is the target sampling interval. Default 10ms.
	TargetSampling time.Duration
	// TargetProduction is the target production interval. Default 10s.
	TargetProduction time.Duration
	// EarlyCutoff enables the §4.5 early cut-off.
	EarlyCutoff bool
	// OrderByHistory samples the previous winner first and skips the rest
	// of the sampling phase while it stays acceptable (§4.5).
	OrderByHistory bool
	// SpanExecutions lets sampling and production intervals span multiple
	// Run calls (§4.4 extension) instead of resampling at every Run.
	SpanExecutions bool
	// AutoTuneProduction retunes the production interval at each production
	// entry using the §5 analysis over the observed history (eq. 9).
	AutoTuneProduction bool
	// Controller selects the feedback controller implementation:
	// core.KindRoundRobin (the paper's controller, the default) or
	// core.KindUCB (the bandit controller, which skips sampling variants
	// whose history proves they cannot win — worthwhile once the variant
	// count grows past a handful).
	Controller string
	// LockPairCost overrides the calibrated cost of one uncontended
	// acquire/release pair, used to convert acquisition counts into
	// locking overhead time. Zero means calibrate at section creation.
	LockPairCost time.Duration
	// Name identifies the section in a policy Store. Required when Store
	// is set; unused otherwise.
	Name string
	// Store, when non-nil, persists what sampling learns: every Run that
	// entered a production phase writes a record (winner, winner overhead,
	// per-variant aggregates) keyed by Name and an environment fingerprint
	// (GOMAXPROCS, Workers, variant-set hash). Long-running callers can
	// also checkpoint mid-Run with Section.Persist.
	Store store.Store
	// WarmStart seeds the controller from a fresh matching Store record at
	// section creation — §4.5 generalized across process restarts: the
	// recorded winner is sampled first and the rest of the first sampling
	// phase is skipped while the winner stays acceptable. A record whose
	// fingerprint or variant set does not match is ignored and the section
	// cold-starts with full sampling. Requires Store (and therefore Name);
	// implies OrderByHistory.
	WarmStart bool
}

// maxWorkers bounds Config.Workers; each worker is a goroutine, and counts
// beyond this are assumed to be bugs (e.g. a byte count passed as a worker
// count) rather than intent.
const maxWorkers = 1 << 16

// Sample is one completed measurement interval.
type Sample struct {
	Kind            string // "sampling", "production" or "partial"
	Variant         int
	Name            string
	Start, End      time.Duration // offsets from section creation
	Overhead        float64
	LockingOverhead float64
	WaitingOverhead float64
}

// Stats summarizes one variant's history.
type Stats struct {
	Name         string
	TimesSampled int
	TimesChosen  int
	MeanOverhead float64
	LastOverhead float64
}

// Mutex is an instrumented spin lock. It must be created by
// Section.NewMutex and locked through Ctx.Lock so acquisitions and
// spinning are charged to the measuring worker.
type Mutex struct {
	state int32
}

// meter accumulates one worker's instrumentation for the current phase
// (§4.3). Only that worker writes it between barriers.
type meter struct {
	acquires int64
	fails    int64
	waitNs   int64
	busyNs   int64
	extraNs  int64
	_        [2]int64 // pad to reduce false sharing
}

// Ctx is the per-worker context passed to variant bodies.
type Ctx struct {
	// Worker is the worker index, in [0, Workers).
	Worker int
	m      *meter
}

// Lock acquires m, spinning if necessary and charging failed attempts and
// waiting time to the measurement (§4.3's waiting overhead).
func (c *Ctx) Lock(m *Mutex) {
	if atomic.CompareAndSwapInt32(&m.state, 0, 1) {
		c.m.acquires++
		return
	}
	start := time.Now()
	spins := 0
	for {
		if atomic.LoadInt32(&m.state) == 0 && atomic.CompareAndSwapInt32(&m.state, 0, 1) {
			break
		}
		c.m.fails++
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
	c.m.acquires++
	c.m.waitNs += time.Since(start).Nanoseconds()
}

// Unlock releases m.
func (c *Ctx) Unlock(m *Mutex) {
	atomic.StoreInt32(&m.state, 0)
}

// AddOverhead charges d of explicit overhead to the current measurement,
// for costs that are not expressed through instrumented locks (e.g. retry
// loops, redundant recomputation).
func (c *Ctx) AddOverhead(d time.Duration) {
	c.m.extraNs += d.Nanoseconds()
}

// Section is a multi-variant parallel section driven by dynamic feedback.
type Section struct {
	cfg      Config
	variants []Variant
	names    []string // resolved variant names, in declaration order
	ctl      core.Ctl
	epoch    time.Time
	pairCost time.Duration
	fp       store.Fingerprint
	warm     bool // a store record warm-started the controller

	mu       sync.Mutex
	cond     *sync.Cond
	arrived  int
	gen      uint64
	current  int32 // active variant index
	deadline int64 // current phase deadline, nanoseconds since epoch
	next     int64 // iteration claim counter
	hi       int64
	done     bool

	meters []meter
	snaps  []meter
}

// validate rejects nonsensical configurations eagerly, so misuse surfaces
// at section creation instead of as a hang or misbehaviour inside Run.
func (cfg Config) validate() error {
	if cfg.Workers < 0 {
		return fmt.Errorf("dynfb: negative worker count %d", cfg.Workers)
	}
	if cfg.Workers > maxWorkers {
		return fmt.Errorf("dynfb: %d workers exceeds the maximum %d", cfg.Workers, maxWorkers)
	}
	if cfg.TargetSampling < 0 {
		return fmt.Errorf("dynfb: negative target sampling interval %v", cfg.TargetSampling)
	}
	if cfg.TargetProduction < 0 {
		return fmt.Errorf("dynfb: negative target production interval %v", cfg.TargetProduction)
	}
	if cfg.TargetSampling > 0 && cfg.TargetProduction > 0 && cfg.TargetSampling > cfg.TargetProduction {
		return fmt.Errorf("dynfb: target sampling interval %v exceeds target production interval %v",
			cfg.TargetSampling, cfg.TargetProduction)
	}
	if cfg.LockPairCost < 0 {
		return fmt.Errorf("dynfb: negative lock pair cost %v", cfg.LockPairCost)
	}
	if cfg.WarmStart && cfg.Store == nil {
		return fmt.Errorf("dynfb: WarmStart requires a Store")
	}
	if !core.ValidKind(cfg.Controller) {
		return fmt.Errorf("dynfb: unknown controller kind %q", cfg.Controller)
	}
	if cfg.Store != nil && cfg.Name == "" {
		return fmt.Errorf("dynfb: a Store requires Config.Name to key the section's records")
	}
	return nil
}

// NewSection creates a section with the given variants.
func NewSection(cfg Config, variants ...Variant) (*Section, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("dynfb: at least one variant is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.TargetSampling == 0 {
		cfg.TargetSampling = 10 * time.Millisecond
	}
	if cfg.TargetProduction == 0 {
		cfg.TargetProduction = 10 * time.Second
	}
	names := make([]string, len(variants))
	policies := make([]core.PolicyInfo, len(variants))
	seen := make(map[string]int, len(variants))
	for i, v := range variants {
		if v.Body == nil {
			return nil, fmt.Errorf("dynfb: variant %d (%s) has no body", i, v.Name)
		}
		name := v.Name
		if name == "" {
			name = fmt.Sprintf("variant%d", i)
		}
		if j, dup := seen[name]; dup {
			return nil, fmt.Errorf("dynfb: variants %d and %d share the name %q", j, i, name)
		}
		seen[name] = i
		names[i] = name
		policies[i] = core.PolicyInfo{Name: name, Cutoff: core.CutoffComponent(v.Cutoff)}
	}
	ctl, err := core.NewCtl(cfg.Controller, core.Config{
		Policies:           policies,
		TargetSampling:     core.Nanos(cfg.TargetSampling),
		TargetProduction:   core.Nanos(cfg.TargetProduction),
		EarlyCutoff:        cfg.EarlyCutoff,
		OrderByHistory:     cfg.OrderByHistory || cfg.WarmStart,
		SpanExecutions:     cfg.SpanExecutions,
		AutoTuneProduction: cfg.AutoTuneProduction,
	})
	if err != nil {
		return nil, fmt.Errorf("dynfb: %w", err)
	}
	s := &Section{
		cfg:      cfg,
		variants: variants,
		names:    names,
		ctl:      ctl,
		epoch:    time.Now(),
		pairCost: cfg.LockPairCost,
		meters:   make([]meter, cfg.Workers),
		snaps:    make([]meter, cfg.Workers),
	}
	s.fp = store.Fingerprint{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Workers:      cfg.Workers,
		VariantsHash: store.VariantsHash(names),
	}
	if cfg.WarmStart {
		s.warmStart()
	}
	s.cond = sync.NewCond(&s.mu)
	if s.pairCost <= 0 {
		s.pairCost = calibrateLockPair()
	}
	return s, nil
}

// loadRecord fetches this section's record for exactly this environment.
// Stores that implement store.EnvLoader (all the backend-based stores)
// are asked for the fingerprint-exact record; plain stores fall back to
// Load plus a fingerprint check.
func (s *Section) loadRecord() (store.Record, bool) {
	var (
		rec store.Record
		ok  bool
		err error
	)
	if el, isEnv := s.cfg.Store.(store.EnvLoader); isEnv {
		rec, ok, err = el.LoadFor(s.cfg.Name, s.fp)
	} else {
		rec, ok, err = s.cfg.Store.Load(s.cfg.Name)
	}
	if err != nil || !ok || rec.Fingerprint != s.fp {
		return store.Record{}, false
	}
	return rec, true
}

// buildSeed converts a store record into controller seed knowledge,
// rejecting records whose winner or variant set no longer matches.
func (s *Section) buildSeed(rec store.Record) (core.Seed, bool) {
	winner := -1
	for i, name := range s.names {
		if name == rec.Winner {
			winner = i
			break
		}
	}
	if winner < 0 {
		return core.Seed{}, false
	}
	seed := core.Seed{Winner: winner, WinnerOverhead: rec.WinnerOverhead}
	if len(rec.Policies) == len(s.names) {
		stats := make([]core.PolicyStats, len(rec.Policies))
		for i, p := range rec.Policies {
			if p.Name != s.names[i] {
				stats = nil
				break
			}
			stats[i] = core.PolicyStats{
				TimesSampled:  p.TimesSampled,
				TimesChosen:   p.TimesChosen,
				LastOverhead:  p.LastOverhead,
				TotalOverhead: p.MeanOverhead * float64(p.TimesSampled),
			}
		}
		seed.Stats = stats
	}
	return seed, true
}

// warmStart seeds the controller from a matching store record. Any
// mismatch — no record, a different environment fingerprint, an unknown
// winner name — silently degrades to a cold start: the store is a cache,
// and a miss just means full sampling.
func (s *Section) warmStart() {
	rec, ok := s.loadRecord()
	if !ok {
		return
	}
	seed, ok := s.buildSeed(rec)
	if !ok {
		return
	}
	if s.ctl.SeedHistory(seed) == nil {
		s.warm = true
	}
}

// Reseed re-attempts a warm start from the configured store. It is the
// live fleet warm-start path: a replica's section boots cold (no record
// had reached its store yet), a peer's winner record arrives over
// replication, and the serving layer calls Reseed so the section adopts
// the fleet's knowledge without a restart. The seed is accepted only
// while the section has not chosen a production winner of its own —
// measured local knowledge always wins over replicated knowledge — and a
// fingerprint or variant mismatch degrades to a no-op exactly like
// warm-starting at creation. It reports whether the section was seeded,
// and is safe to call concurrently with Run.
func (s *Section) Reseed() bool {
	if s.cfg.Store == nil || s.cfg.Name == "" {
		return false
	}
	rec, ok := s.loadRecord()
	if !ok {
		return false
	}
	seed, ok := s.buildSeed(rec)
	if !ok {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.warm {
		return false
	}
	if _, won := s.ctl.LastWinner(); won {
		return false
	}
	if s.ctl.LateSeed(seed) != nil {
		return false
	}
	s.warm = true
	return true
}

// WarmStarted reports whether a matching store record seeded this section
// (at creation, or later through Reseed).
func (s *Section) WarmStarted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.warm
}

// calibrateLockPair times uncontended instrumented lock/unlock pairs.
func calibrateLockPair() time.Duration {
	var m Mutex
	ctx := &Ctx{m: &meter{}}
	const n = 4096
	start := time.Now()
	for i := 0; i < n; i++ {
		ctx.Lock(&m)
		ctx.Unlock(&m)
	}
	d := time.Since(start) / n
	if d <= 0 {
		d = 20 * time.Nanosecond
	}
	return d
}

// NewMutex creates an instrumented mutex.
func NewMutex() *Mutex { return &Mutex{} }

// NewMutex creates an instrumented mutex (convenience method).
func (s *Section) NewMutex() *Mutex { return NewMutex() }

// now returns the controller clock (nanoseconds since section creation).
func (s *Section) now() core.Nanos { return core.Nanos(time.Since(s.epoch)) }

// Run executes iterations [lo, hi) across the configured workers, choosing
// variants by dynamic feedback. It blocks until every iteration has
// completed. Run must not be called concurrently with itself on the same
// Section.
func (s *Section) Run(lo, hi int) {
	if hi <= lo {
		return
	}
	// The controller setup happens under s.mu so that StatsSnapshot (which
	// may run concurrently from another goroutine) always sees a coherent
	// controller.
	s.mu.Lock()
	atomic.StoreInt64(&s.next, int64(lo))
	s.hi = int64(hi)
	s.done = false
	s.arrived = 0
	s.ctl.BeginExecution(s.now())
	atomic.StoreInt32(&s.current, int32(s.ctl.CurrentPolicy()))
	atomic.StoreInt64(&s.deadline, int64(s.ctl.Deadline()))
	for i := range s.meters {
		s.meters[i] = meter{}
		s.snaps[i] = meter{}
	}
	s.mu.Unlock()
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.worker(w)
		}(w)
	}
	wg.Wait()
	if s.cfg.Store != nil {
		// Best-effort: the section keeps adapting even if persistence
		// fails (e.g. a read-only disk); the next Run retries.
		_ = s.Persist()
	}
}

// worker claims and executes iterations until the section completes.
func (s *Section) worker(w int) {
	ctx := &Ctx{Worker: w, m: &s.meters[w]}
	for {
		i := atomic.AddInt64(&s.next, 1) - 1
		if i >= s.hi {
			if s.rendezvous(w) {
				return
			}
			continue
		}
		variant := s.variants[atomic.LoadInt32(&s.current)]
		start := time.Now()
		variant.Body(ctx, int(i))
		ctx.m.busyNs += time.Since(start).Nanoseconds()
		// Potential switch point: poll the clock and test for interval
		// expiration (§4.1). The deadline is cached atomically so polling
		// never races with the controller transition under s.mu.
		if int64(s.now()) >= atomic.LoadInt64(&s.deadline) {
			if s.rendezvous(w) {
				return
			}
		}
	}
}

// rendezvous implements the synchronous switch barrier. The last worker to
// arrive performs the controller transition; the return value reports
// whether the section is complete.
func (s *Section) rendezvous(w int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.gen
	s.arrived++
	if s.arrived == s.cfg.Workers {
		s.arrived = 0
		s.gen++
		now := s.now()
		if atomic.LoadInt64(&s.next) >= s.hi {
			s.ctl.EndExecution(now, s.phaseDelta())
			s.done = true
		} else {
			s.ctl.CompletePhase(now, s.phaseDelta())
			atomic.StoreInt32(&s.current, int32(s.ctl.CurrentPolicy()))
			atomic.StoreInt64(&s.deadline, int64(s.ctl.Deadline()))
		}
		s.cond.Broadcast()
		return s.done
	}
	for gen == s.gen {
		s.cond.Wait()
	}
	return s.done
}

// phaseDelta aggregates the workers' instrumentation since the last phase
// boundary and resets the snapshots (§4.3).
func (s *Section) phaseDelta() core.Measurement {
	var m core.Measurement
	for i := range s.meters {
		cur := s.meters[i]
		prev := s.snaps[i]
		acq := cur.acquires - prev.acquires
		m.Acquires += acq
		m.FailedAcquires += cur.fails - prev.fails
		m.LockTime += core.Nanos(acq*s.pairCost.Nanoseconds() + (cur.extraNs - prev.extraNs))
		m.WaitTime += core.Nanos(cur.waitNs - prev.waitNs)
		m.ExecTime += core.Nanos(cur.busyNs - prev.busyNs)
		s.snaps[i] = cur
	}
	return m
}

// Current returns the index of the variant the section would run now.
func (s *Section) Current() int { return int(atomic.LoadInt32(&s.current)) }

// BestKnown returns the variant the controller currently believes best.
func (s *Section) BestKnown() int { return s.ctl.BestKnownPolicy() }

// LastChosen returns the variant most recently selected for a production
// phase, and whether any production phase has run yet. Unlike BestKnown it
// is not perturbed by a sampling round in progress.
func (s *Section) LastChosen() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctl.LastWinner()
}

// RecommendedProduction derives a production interval from the section's
// observed history using the paper's §5 analysis: the overhead drift rate
// is estimated from the samples, and eq. 9 gives the interval that
// minimizes the worst-case work deficit. The second result is false while
// the history is too thin.
func (s *Section) RecommendedProduction() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.ctl.RecommendProduction()
	return time.Duration(n), ok
}

// Samples returns the measurement history.
func (s *Section) Samples() []Sample {
	var out []Sample
	for _, c := range s.ctl.Samples() {
		out = append(out, Sample{
			Kind:            kindName(c.Kind),
			Variant:         c.Policy,
			Name:            s.ctl.PolicyName(c.Policy),
			Start:           time.Duration(c.Start),
			End:             time.Duration(c.End),
			Overhead:        c.Overhead,
			LockingOverhead: c.Meas.LockingOverhead(),
			WaitingOverhead: c.Meas.WaitingOverhead(),
		})
	}
	return out
}

func kindName(k core.SampleKind) string { return k.String() }

// Snapshot is a coherent view of a section's state and per-variant
// history, safe to take while Run executes: StatsSnapshot synchronizes
// with the switch barrier instead of stopping the section.
type Snapshot struct {
	// Name is Config.Name ("" when the section is unnamed).
	Name string
	// Phase is "idle", "sampling" or "production".
	Phase string
	// Rounds is the number of completed sampling rounds.
	Rounds int
	// Current is the name of the variant the section would run now.
	Current string
	// Winner is the variant most recently chosen for production; "" until
	// a production phase has been entered.
	Winner string
	// WinnerOverhead is the overhead Winner measured when chosen.
	WinnerOverhead float64
	// WarmStarted reports whether a store record seeded the section.
	WarmStarted bool
	// Switches counts adaptation events: production entries that selected
	// a different variant than the previous production phase (the first
	// production entry counts as one).
	Switches int
	// Stats are the per-variant aggregates, in declaration order.
	Stats []Stats
}

// StatsSnapshot captures the section's state without stopping it. It may
// be called concurrently with Run from any goroutine (it briefly contends
// with the switch barrier for the section lock); long-running servers use
// it to report live per-variant overheads and to build store records.
func (s *Section) StatsSnapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Section) snapshotLocked() Snapshot {
	snap := Snapshot{
		Name:        s.cfg.Name,
		Phase:       s.ctl.Phase().String(),
		Rounds:      s.ctl.Rounds(),
		Current:     s.names[s.ctl.CurrentPolicy()],
		WarmStarted: s.warm,
	}
	if w, ok := s.ctl.LastWinner(); ok {
		snap.Winner = s.names[w]
		snap.WinnerOverhead = s.ctl.LastWinnerOverhead()
	}
	switches := s.ctl.Switches()
	for i, sw := range switches {
		if i == 0 || sw.Policy != switches[i-1].Policy {
			snap.Switches++
		}
	}
	cs := s.ctl.Stats()
	snap.Stats = make([]Stats, len(cs))
	for i, c := range cs {
		snap.Stats[i] = Stats{
			Name:         s.names[i],
			TimesSampled: c.TimesSampled,
			TimesChosen:  c.TimesChosen,
			MeanOverhead: c.MeanOverhead(),
			LastOverhead: c.LastOverhead,
		}
	}
	return snap
}

// Persist writes the section's current record to the configured store. It
// is called automatically at the end of every Run; long-running callers
// (servers with very long Runs) may also call it concurrently with Run to
// checkpoint mid-flight. It is a no-op until a production phase has been
// entered — a record without a winner would carry nothing to warm-start
// from — and when no store is configured.
func (s *Section) Persist() error {
	if s.cfg.Store == nil {
		return nil
	}
	s.mu.Lock()
	winner, ok := s.ctl.LastWinner()
	if !ok {
		s.mu.Unlock()
		return nil
	}
	rec := store.Record{
		Section:        s.cfg.Name,
		Fingerprint:    s.fp,
		Winner:         s.names[winner],
		WinnerOverhead: s.ctl.LastWinnerOverhead(),
		Rounds:         s.ctl.Rounds(),
		UpdatedUnix:    time.Now().Unix(),
	}
	for i, c := range s.ctl.Stats() {
		rec.Policies = append(rec.Policies, store.PolicyRecord{
			Name:         s.names[i],
			TimesSampled: c.TimesSampled,
			TimesChosen:  c.TimesChosen,
			MeanOverhead: c.MeanOverhead(),
			LastOverhead: c.LastOverhead,
		})
	}
	s.mu.Unlock()
	// The store write happens outside the section lock so a slow disk
	// never stalls the workers' switch barrier.
	return s.cfg.Store.Save(rec)
}

// VariantStats returns per-variant aggregates.
func (s *Section) VariantStats() []Stats {
	cs := s.ctl.Stats()
	out := make([]Stats, len(cs))
	for i, c := range cs {
		out[i] = Stats{
			Name:         s.ctl.PolicyName(i),
			TimesSampled: c.TimesSampled,
			TimesChosen:  c.TimesChosen,
			MeanOverhead: c.MeanOverhead(),
			LastOverhead: c.LastOverhead,
		}
	}
	return out
}
