package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Key addresses one policy record in a Backend. Records are keyed by the
// tenant (workload namespace), the section name, and the environment
// fingerprint hash, so that knowledge learned by one workload in one
// environment is never applied to another: a fleet serving two unlike
// tenants keeps their records fully disjoint even when section names
// collide, and the same tenant's records stay per-environment.
type Key struct {
	// Tenant is the workload namespace ("" is the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Section is the adaptive section name.
	Section string `json:"section"`
	// Env is Fingerprint.Hash() of the environment the record was
	// learned in.
	Env string `json:"env"`
}

// Validate rejects keys that cannot address a record.
func (k Key) Validate() error {
	if k.Section == "" {
		return fmt.Errorf("store: key has no section name")
	}
	if k.Env == "" {
		return fmt.Errorf("store: key has no environment hash")
	}
	return nil
}

// String renders the key as tenant/section/env for logs and reports.
func (k Key) String() string {
	t := k.Tenant
	if t == "" {
		t = "default"
	}
	return t + "/" + k.Section + "/" + k.Env
}

// less orders keys lexicographically by (tenant, section, env).
func (k Key) less(o Key) bool {
	if k.Tenant != o.Tenant {
		return k.Tenant < o.Tenant
	}
	if k.Section != o.Section {
		return k.Section < o.Section
	}
	return k.Env < o.Env
}

// VersionedRecord is a Record together with the metadata a Backend needs
// for compare-and-swap updates and for last-writer-wins replication.
type VersionedRecord struct {
	// Key addresses the record.
	Key Key `json:"key"`
	// Version is the backend-local CAS version, assigned by Put. It is
	// meaningful only within the backend that assigned it; replication
	// never transfers it.
	Version uint64 `json:"version"`
	// Clock is a Lamport-style logical clock used for last-writer-wins
	// resolution across replicas: writers stamp Clock strictly greater
	// than the clock of the record they read.
	Clock uint64 `json:"clock"`
	// Origin identifies the replica that produced this write; it breaks
	// Clock ties deterministically.
	Origin string `json:"origin,omitempty"`
	// Record is the policy knowledge itself.
	Record Record `json:"record"`
}

// Newer reports whether a should replace b under last-writer-wins
// resolution: higher Clock wins, then later UpdatedUnix, then the greater
// Origin string. The order is total and deterministic, so every replica
// resolves a conflict identically regardless of arrival order.
func Newer(a, b VersionedRecord) bool {
	if a.Clock != b.Clock {
		return a.Clock > b.Clock
	}
	if a.Record.UpdatedUnix != b.Record.UpdatedUnix {
		return a.Record.UpdatedUnix > b.Record.UpdatedUnix
	}
	return a.Origin > b.Origin
}

// ErrConflict is returned by Backend.Put when the caller's expected
// version no longer matches the stored record: another writer got there
// first. The caller re-reads and retries (or merges).
var ErrConflict = errors.New("store: compare-and-swap conflict")

// Backend is the storage engine behind the Store API: a versioned key →
// record map with optimistic concurrency and change notification. Four
// implementations are provided: MemStore (in-process), FileStore (one
// JSON file, atomic renames), KVStore (write-ahead-logged embedded KV),
// and ReplStore (hub-replicated). All must be safe for concurrent use.
type Backend interface {
	// Get returns the record at k and whether one exists.
	Get(k Key) (VersionedRecord, bool, error)
	// Put stores rec at rec.Key if the stored version still equals prev
	// (0 means "no record yet"). On success it returns the stored record
	// with its newly assigned Version; on a version mismatch it returns
	// ErrConflict.
	Put(rec VersionedRecord, prev uint64) (VersionedRecord, error)
	// List returns every key, sorted by (tenant, section, env).
	List() ([]Key, error)
	// Watch registers fn to be called once for every applied Put until
	// cancel is called. Callbacks run synchronously on the writer's
	// goroutine after the write is applied; they must be fast and must
	// not block. Callback order across concurrent writers is unspecified.
	Watch(fn func(VersionedRecord)) (cancel func())
	// Close releases the backend's resources. Get/Put after Close may
	// fail.
	Close() error
}

// watchers implements Watch for the backends: a registry of callbacks
// notified after each applied put. Notification happens outside the
// backend's record lock so callbacks may read the backend freely.
type watchers struct {
	mu   sync.Mutex
	subs map[int]func(VersionedRecord)
	next int
}

func (w *watchers) add(fn func(VersionedRecord)) (cancel func()) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.subs == nil {
		w.subs = map[int]func(VersionedRecord){}
	}
	id := w.next
	w.next++
	w.subs[id] = fn
	return func() {
		w.mu.Lock()
		delete(w.subs, id)
		w.mu.Unlock()
	}
}

func (w *watchers) notify(rec VersionedRecord) {
	w.mu.Lock()
	ids := make([]int, 0, len(w.subs))
	for id := range w.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(VersionedRecord), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, w.subs[id])
	}
	w.mu.Unlock()
	// Subscription order, so multi-watcher interleavings replay the same
	// way every run.
	for _, fn := range fns {
		fn(rec)
	}
}

// validatePut is the shared Put precondition check.
func validatePut(rec VersionedRecord) error {
	if err := rec.Key.Validate(); err != nil {
		return err
	}
	if rec.Record.Section == "" {
		rec.Record.Section = rec.Key.Section
	}
	if rec.Record.Section != rec.Key.Section {
		return fmt.Errorf("store: record section %q does not match key section %q",
			rec.Record.Section, rec.Key.Section)
	}
	return nil
}

// MergeLWW applies rec into b if it wins last-writer-wins resolution
// against the record already stored at its key, retrying CAS conflicts.
// It reports whether rec was applied. Replication uses it to fold remote
// updates into a local backend without ever regressing a newer local
// write.
func MergeLWW(b Backend, rec VersionedRecord) (bool, error) {
	for {
		cur, ok, err := b.Get(rec.Key)
		if err != nil {
			return false, err
		}
		if ok && !Newer(rec, cur) {
			return false, nil
		}
		var prev uint64
		if ok {
			prev = cur.Version
		}
		if _, err := b.Put(rec, prev); err != nil {
			if errors.Is(err, ErrConflict) {
				continue
			}
			return false, err
		}
		return true, nil
	}
}

// NewTenantStore binds a Backend to one tenant namespace and exposes it
// through the Store API dynfb consumes. Save stamps the record's key from
// its section name and fingerprint, advances the Lamport clock past the
// record it replaces, and retries CAS conflicts; concurrent savers
// therefore never lose each other's sections, and the last writer of the
// same key wins.
func NewTenantStore(b Backend, tenant string) Store {
	return &tenantStore{b: b, tenant: tenant}
}

type tenantStore struct {
	b      Backend
	tenant string
}

func (s *tenantStore) LoadFor(section string, fp Fingerprint) (Record, bool, error) {
	return viewLoadFor(s.b, s.tenant, section, fp)
}

func (s *tenantStore) Load(section string) (Record, bool, error) {
	return viewLoad(s.b, s.tenant, section)
}

func (s *tenantStore) Save(rec Record) error {
	return viewSave(s.b, s.tenant, rec)
}

func (s *tenantStore) Sections() ([]string, error) {
	return viewSections(s.b, s.tenant)
}

// viewLoadFor is the exact lookup: one tenant, one section, one
// environment.
func viewLoadFor(b Backend, tenant, section string, fp Fingerprint) (Record, bool, error) {
	vr, ok, err := b.Get(Key{Tenant: tenant, Section: section, Env: fp.Hash()})
	if err != nil || !ok {
		return Record{}, false, err
	}
	return vr.Record, true, nil
}

// viewLoad returns the newest record for the section across environments
// (callers that know their fingerprint use LoadFor; Load keeps the
// original single-record-per-section Store semantics working).
func viewLoad(b Backend, tenant, section string) (Record, bool, error) {
	keys, err := b.List()
	if err != nil {
		return Record{}, false, err
	}
	var best VersionedRecord
	found := false
	for _, k := range keys {
		if k.Tenant != tenant || k.Section != section {
			continue
		}
		vr, ok, err := b.Get(k)
		if err != nil {
			return Record{}, false, err
		}
		if !ok {
			continue
		}
		if !found || Newer(vr, best) {
			best = vr
			found = true
		}
	}
	if !found {
		return Record{}, false, nil
	}
	return best.Record, true, nil
}

func viewSave(b Backend, tenant string, rec Record) error {
	if rec.Section == "" {
		return fmt.Errorf("store: record has no section name")
	}
	k := Key{Tenant: tenant, Section: rec.Section, Env: rec.Fingerprint.Hash()}
	for {
		cur, ok, err := b.Get(k)
		if err != nil {
			return err
		}
		next := VersionedRecord{Key: k, Record: rec, Clock: 1}
		var prev uint64
		if ok {
			prev = cur.Version
			next.Clock = cur.Clock + 1
		}
		if _, err := b.Put(next, prev); err != nil {
			if errors.Is(err, ErrConflict) {
				continue
			}
			return err
		}
		return nil
	}
}

func viewSections(b Backend, tenant string) ([]string, error) {
	keys, err := b.List()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, k := range keys {
		if k.Tenant != tenant || seen[k.Section] {
			continue
		}
		seen[k.Section] = true
		out = append(out, k.Section)
	}
	sort.Strings(out)
	return out, nil
}

func sortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
}
