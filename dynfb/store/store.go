// Package store persists per-section dynamic feedback policy knowledge
// across process runs — and, replicated, across a fleet of processes.
//
// The paper's controller relearns the best policy from scratch at every
// process start. Its own §4.5 observation — sample the expected winner
// first, and skip the rest of the sampling phase while that winner stays
// acceptable — generalizes naturally across runs: if a previous process
// already sampled the section in the same environment, the new process can
// start from the recorded winner instead of a blank slate. A fleet takes
// the same idea one step further: a winner discovered by one replica is
// pushed to a hub and warm-starts every other replica with a matching
// environment, so the sampling cost is paid once fleet-wide.
//
// A Store maps section names to Records. Each Record carries an environment
// Fingerprint (GOMAXPROCS, worker count, a hash of the variant set) so that
// knowledge learned under one configuration is never applied to another:
// the winning lock discipline at 2 workers is routinely the loser at 16.
// Consumers (dynfb.Config.Store) treat a fingerprint mismatch as a cache
// miss and fall back to full sampling.
//
// The Store API is a thin view over a Backend: a versioned key → record
// map keyed by (tenant, section, environment hash) with compare-and-swap
// updates and change notification (see Backend). Four backends are
// provided: MemStore (tests and single-process sharing), FileStore (one
// JSON file with atomic-rename writes), KVStore (an embedded
// write-ahead-logged KV directory), and ReplStore (hub-replicated with
// last-writer-wins resolution; see repl.go and the hub package). A store
// is a cache of learnable knowledge: corruption, truncation, or schema
// drift loads as an empty store rather than an error, because the worst
// case is simply a cold start.
package store

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// SchemaVersion is the on-disk schema of FileStore and of KVStore
// snapshots. Version 1 (the original section-keyed map) is migrated on
// load; any other mismatched version loads as empty (the knowledge is
// re-learnable; the format is not negotiated).
const SchemaVersion = 2

// Fingerprint identifies the environment a record was learned in. Records
// only warm-start sections whose fingerprint matches exactly.
type Fingerprint struct {
	// GoMaxProcs is runtime.GOMAXPROCS(0) at learning time.
	GoMaxProcs int `json:"gomaxprocs"`
	// Workers is the section's worker count.
	Workers int `json:"workers"`
	// VariantsHash is VariantsHash over the section's variant names, in
	// declaration order.
	VariantsHash string `json:"variants_hash"`
}

// Hash folds the fingerprint into a short stable string used as the
// environment component of a backend Key.
func (f Fingerprint) Hash() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%d\x00%s", f.GoMaxProcs, f.Workers, f.VariantsHash)
	return fmt.Sprintf("%016x", h.Sum64())
}

// VariantsHash hashes an ordered variant-name list into a short stable
// string for Fingerprint.VariantsHash.
func VariantsHash(names []string) string {
	h := fnv.New64a()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// PolicyRecord is one variant's accumulated history.
type PolicyRecord struct {
	Name         string  `json:"name"`
	TimesSampled int     `json:"times_sampled"`
	TimesChosen  int     `json:"times_chosen"`
	MeanOverhead float64 `json:"mean_overhead"`
	LastOverhead float64 `json:"last_overhead"`
}

// Record is everything a section has learned: who won the most recent
// production selection, at what overhead, and the per-variant aggregates.
type Record struct {
	// Section is the section name the record is keyed by.
	Section string `json:"section"`
	// Fingerprint is the environment the record was learned in.
	Fingerprint Fingerprint `json:"fingerprint"`
	// Winner is the variant name most recently chosen for production.
	Winner string `json:"winner"`
	// WinnerOverhead is the overhead the winner measured when chosen.
	WinnerOverhead float64 `json:"winner_overhead"`
	// Rounds is the number of completed sampling rounds behind the record.
	Rounds int `json:"rounds"`
	// Policies are the per-variant aggregates, in declaration order.
	Policies []PolicyRecord `json:"policies"`
	// UpdatedUnix is the wall-clock time of the last save, Unix seconds.
	UpdatedUnix int64 `json:"updated_unix"`
}

func cloneRecord(r Record) Record {
	out := r
	out.Policies = append([]PolicyRecord(nil), r.Policies...)
	return out
}

func cloneVersioned(vr VersionedRecord) VersionedRecord {
	vr.Record = cloneRecord(vr.Record)
	return vr
}

// Store persists section records. Implementations must be safe for
// concurrent use: a server saves from many sections at once.
type Store interface {
	// Load returns the record for section and whether one exists. When
	// records exist for several environments, the newest wins; callers
	// that know their environment should use LoadFor (all stores in this
	// package implement it) via the EnvLoader interface.
	Load(section string) (Record, bool, error)
	// Save upserts rec, keyed by rec.Section (and, on backend-based
	// stores, rec.Fingerprint).
	Save(rec Record) error
	// Sections returns the stored section names, sorted.
	Sections() ([]string, error)
}

// EnvLoader is the environment-exact lookup every store in this package
// provides: the record for one section learned in exactly the given
// environment. Consumers type-assert their Store to it and fall back to
// Load when the assertion fails.
type EnvLoader interface {
	LoadFor(section string, fp Fingerprint) (Record, bool, error)
}

// MemStore is an in-memory store, for tests and for sharing knowledge
// between sections of a single process. It implements both Store and
// Backend.
type MemStore struct {
	mu    sync.Mutex
	recs  map[Key]VersionedRecord
	watch watchers
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recs: map[Key]VersionedRecord{}}
}

// Get implements Backend.
func (m *MemStore) Get(k Key) (VersionedRecord, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	vr, ok := m.recs[k]
	if !ok {
		return VersionedRecord{}, false, nil
	}
	return cloneVersioned(vr), true, nil
}

// Put implements Backend.
func (m *MemStore) Put(rec VersionedRecord, prev uint64) (VersionedRecord, error) {
	if err := validatePut(rec); err != nil {
		return VersionedRecord{}, err
	}
	m.mu.Lock()
	cur, ok := m.recs[rec.Key]
	curVersion := uint64(0)
	if ok {
		curVersion = cur.Version
	}
	if curVersion != prev {
		m.mu.Unlock()
		return VersionedRecord{}, fmt.Errorf("%w: key %s at version %d, caller expected %d",
			ErrConflict, rec.Key, curVersion, prev)
	}
	stored := cloneVersioned(rec)
	stored.Version = curVersion + 1
	m.recs[rec.Key] = stored
	out := cloneVersioned(stored)
	m.mu.Unlock()
	m.watch.notify(out)
	return cloneVersioned(out), nil
}

// List implements Backend.
func (m *MemStore) List() ([]Key, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]Key, 0, len(m.recs))
	for k := range m.recs {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys, nil
}

// Watch implements Backend.
func (m *MemStore) Watch(fn func(VersionedRecord)) (cancel func()) {
	return m.watch.add(fn)
}

// Close implements Backend (a no-op for the in-memory store).
func (m *MemStore) Close() error { return nil }

// Load implements Store.
func (m *MemStore) Load(section string) (Record, bool, error) {
	return viewLoad(m, "", section)
}

// LoadFor implements EnvLoader.
func (m *MemStore) LoadFor(section string, fp Fingerprint) (Record, bool, error) {
	return viewLoadFor(m, "", section, fp)
}

// Save implements Store.
func (m *MemStore) Save(rec Record) error {
	return viewSave(m, "", rec)
}

// Sections implements Store.
func (m *MemStore) Sections() ([]string, error) {
	return viewSections(m, "")
}
