// Package store persists per-section dynamic feedback policy knowledge
// across process runs.
//
// The paper's controller relearns the best policy from scratch at every
// process start. Its own §4.5 observation — sample the expected winner
// first, and skip the rest of the sampling phase while that winner stays
// acceptable — generalizes naturally across runs: if a previous process
// already sampled the section in the same environment, the new process can
// start from the recorded winner instead of a blank slate.
//
// A Store maps section names to Records. Each Record carries an environment
// Fingerprint (GOMAXPROCS, worker count, a hash of the variant set) so that
// knowledge learned under one configuration is never applied to another:
// the winning lock discipline at 2 workers is routinely the loser at 16.
// Consumers (dynfb.Config.Store) treat a fingerprint mismatch as a cache
// miss and fall back to full sampling.
//
// Two implementations are provided: MemStore, for tests and single-process
// sharing, and FileStore, a JSON file with atomic-rename writes and a
// versioned schema. A store is a cache of learnable knowledge: corruption,
// truncation, or schema drift loads as an empty store rather than an error,
// because the worst case is simply a cold start.
package store

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// SchemaVersion is the on-disk schema of FileStore. Files written with a
// different version load as empty (the knowledge is re-learnable; the
// format is not negotiated).
const SchemaVersion = 1

// Fingerprint identifies the environment a record was learned in. Records
// only warm-start sections whose fingerprint matches exactly.
type Fingerprint struct {
	// GoMaxProcs is runtime.GOMAXPROCS(0) at learning time.
	GoMaxProcs int `json:"gomaxprocs"`
	// Workers is the section's worker count.
	Workers int `json:"workers"`
	// VariantsHash is VariantsHash over the section's variant names, in
	// declaration order.
	VariantsHash string `json:"variants_hash"`
}

// VariantsHash hashes an ordered variant-name list into a short stable
// string for Fingerprint.VariantsHash.
func VariantsHash(names []string) string {
	h := fnv.New64a()
	for _, n := range names {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// PolicyRecord is one variant's accumulated history.
type PolicyRecord struct {
	Name         string  `json:"name"`
	TimesSampled int     `json:"times_sampled"`
	TimesChosen  int     `json:"times_chosen"`
	MeanOverhead float64 `json:"mean_overhead"`
	LastOverhead float64 `json:"last_overhead"`
}

// Record is everything a section has learned: who won the most recent
// production selection, at what overhead, and the per-variant aggregates.
type Record struct {
	// Section is the section name the record is keyed by.
	Section string `json:"section"`
	// Fingerprint is the environment the record was learned in.
	Fingerprint Fingerprint `json:"fingerprint"`
	// Winner is the variant name most recently chosen for production.
	Winner string `json:"winner"`
	// WinnerOverhead is the overhead the winner measured when chosen.
	WinnerOverhead float64 `json:"winner_overhead"`
	// Rounds is the number of completed sampling rounds behind the record.
	Rounds int `json:"rounds"`
	// Policies are the per-variant aggregates, in declaration order.
	Policies []PolicyRecord `json:"policies"`
	// UpdatedUnix is the wall-clock time of the last save, Unix seconds.
	UpdatedUnix int64 `json:"updated_unix"`
}

func cloneRecord(r Record) Record {
	out := r
	out.Policies = append([]PolicyRecord(nil), r.Policies...)
	return out
}

// Store persists section records. Implementations must be safe for
// concurrent use: a server saves from many sections at once.
type Store interface {
	// Load returns the record for section and whether one exists.
	Load(section string) (Record, bool, error)
	// Save upserts rec, keyed by rec.Section.
	Save(rec Record) error
	// Sections returns the stored section names, sorted.
	Sections() ([]string, error)
}

// MemStore is an in-memory Store, for tests and for sharing knowledge
// between sections of a single process.
type MemStore struct {
	mu   sync.RWMutex
	recs map[string]Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recs: map[string]Record{}}
}

// Load implements Store.
func (m *MemStore) Load(section string) (Record, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rec, ok := m.recs[section]
	if !ok {
		return Record{}, false, nil
	}
	return cloneRecord(rec), true, nil
}

// Save implements Store.
func (m *MemStore) Save(rec Record) error {
	if rec.Section == "" {
		return fmt.Errorf("store: record has no section name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs[rec.Section] = cloneRecord(rec)
	return nil
}

// Sections implements Store.
func (m *MemStore) Sections() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return sortedKeys(m.recs), nil
}

func sortedKeys(m map[string]Record) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
