package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// kvPut writes one versioned record through the Backend interface,
// creating or updating as needed.
func kvPut(t *testing.T, s *KVStore, section, env string, clock uint64) {
	t.Helper()
	k := Key{Section: section, Env: env}
	cur, ok, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	if ok {
		prev = cur.Version
	}
	rec := sampleRecord(section)
	if _, err := s.Put(VersionedRecord{Key: k, Clock: clock, Record: rec}, prev); err != nil {
		t.Fatal(err)
	}
}

func TestKVCrashRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenKV(dir)
	if err != nil {
		t.Fatal(err)
	}
	kvPut(t, s, "alpha", "e1", 1)
	kvPut(t, s, "beta", "e1", 1)
	kvPut(t, s, "alpha", "e1", 2) // update: replayed last-write-wins

	// Simulate a crash: no Close, no compaction — state lives in the WAL.
	if _, err := os.Stat(filepath.Join(dir, kvSnapshotName)); !os.IsNotExist(err) {
		t.Fatal("snapshot exists before any compaction")
	}
	s2, err := OpenKV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.LoadWarning() != "" {
		t.Errorf("clean WAL produced warning %q", s2.LoadWarning())
	}
	got, ok, err := s2.Get(Key{Section: "alpha", Env: "e1"})
	if !ok || err != nil {
		t.Fatalf("alpha: ok=%v err=%v", ok, err)
	}
	if got.Clock != 2 || got.Version != 2 {
		t.Errorf("alpha clock=%d version=%d, want clock 2 version 2", got.Clock, got.Version)
	}
	if keys, _ := s2.List(); len(keys) != 2 {
		t.Errorf("recovered %d keys, want 2", len(keys))
	}
}

// TestKVTornTailTruncated crashes mid-append in three ways; in each case
// every complete frame survives and the damage is reported, not fatal.
func TestKVTornTailTruncated(t *testing.T) {
	damage := map[string]func(t *testing.T, walPath string){
		"torn-payload": func(t *testing.T, walPath string) {
			st, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			// Cut into the last frame's payload.
			if err := os.Truncate(walPath, st.Size()-5); err != nil {
				t.Fatal(err)
			}
		},
		"short-header": func(t *testing.T, walPath string) {
			f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			// A crash after 3 bytes of the next frame's header.
			if _, err := f.Write([]byte{0x01, 0x02, 0x03}); err != nil {
				t.Fatal(err)
			}
		},
		"checksum-mismatch": func(t *testing.T, walPath string) {
			f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			// A full frame whose payload does not match its CRC.
			payload := []byte(`{"key":{"section":"evil","env":"e"}}`)
			frame := make([]byte, kvFrameHeader+len(payload))
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:8], 0xdeadbeef)
			copy(frame[kvFrameHeader:], payload)
			if _, err := f.Write(frame); err != nil {
				t.Fatal(err)
			}
		},
		"implausible-length": func(t *testing.T, walPath string) {
			f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			header := make([]byte, kvFrameHeader)
			binary.LittleEndian.PutUint32(header[0:4], kvMaxFrame+1)
			if _, err := f.Write(header); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, breakWAL := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenKV(dir)
			if err != nil {
				t.Fatal(err)
			}
			kvPut(t, s, "alpha", "e1", 1)
			kvPut(t, s, "beta", "e1", 1)
			walPath := filepath.Join(dir, kvWALName)
			preSize := func() int64 {
				st, err := os.Stat(walPath)
				if err != nil {
					t.Fatal(err)
				}
				return st.Size()
			}()

			breakWAL(t, walPath)

			s2, err := OpenKV(dir)
			if err != nil {
				t.Fatalf("damaged WAL must open, got %v", err)
			}
			if s2.LoadWarning() == "" {
				t.Error("no warning for damaged WAL tail")
			}
			// The complete frames survive...
			if _, ok, _ := s2.Get(Key{Section: "beta", Env: "e1"}); !ok {
				// ...except the one the damage cut into.
				if name != "torn-payload" {
					t.Error("complete frame lost to tail damage")
				}
			}
			if _, ok, _ := s2.Get(Key{Section: "alpha", Env: "e1"}); !ok {
				t.Error("first frame lost to tail damage")
			}
			// The damaged record is never visible.
			if _, ok, _ := s2.Get(Key{Section: "evil", Env: "e"}); ok {
				t.Error("corrupt frame surfaced a record")
			}
			// The damaged suffix is physically gone, so the next append
			// starts from a clean boundary.
			st, err := os.Stat(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() > preSize {
				t.Errorf("WAL still %d bytes after truncation, had %d before damage", st.Size(), preSize)
			}
			// And the store keeps working.
			kvPut(t, s2, "gamma", "e1", 1)
			s3, err := OpenKV(dir)
			if err != nil {
				t.Fatal(err)
			}
			if s3.LoadWarning() != "" {
				t.Errorf("repaired WAL still warns: %q", s3.LoadWarning())
			}
			if _, ok, _ := s3.Get(Key{Section: "gamma", Env: "e1"}); !ok {
				t.Error("write after repair lost")
			}
		})
	}
}

func TestKVCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenKV(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		kvPut(t, s, "alpha", "e1", uint64(i+1))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// The WAL is empty, the snapshot holds everything.
	st, err := os.Stat(filepath.Join(dir, kvWALName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Errorf("WAL %d bytes after compaction, want 0", st.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, kvSnapshotName)); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	// Writes after compaction land in the WAL again; reopen folds both.
	kvPut(t, s, "beta", "e1", 1)
	s2, err := OpenKV(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, ok, _ := s2.Get(Key{Section: "alpha", Env: "e1"})
	if !ok || a.Clock != 6 {
		t.Errorf("alpha: ok=%v clock=%d, want clock 6 from snapshot", ok, a.Clock)
	}
	if _, ok, _ := s2.Get(Key{Section: "beta", Env: "e1"}); !ok {
		t.Error("post-compaction write lost")
	}
}

func TestKVCloseCompactsAndReopens(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenKV(dir)
	if err != nil {
		t.Fatal(err)
	}
	kvPut(t, s, "alpha", "e1", 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(VersionedRecord{Key: Key{Section: "x", Env: "e"}, Record: sampleRecord("x")}, 0); err == nil {
		t.Error("Put after Close succeeded")
	}
	s2, err := OpenKV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.Get(Key{Section: "alpha", Env: "e1"}); !ok {
		t.Error("record lost across Close/reopen")
	}
}
