// Package hub implements the dfstored replication hub: the rendezvous
// point a fleet of dfserved replicas pushes winner records to and
// subscribes to peer updates from.
//
// The hub is deliberately small. It holds the fleet's current policy
// knowledge as a map of (tenant, section, environment) keys to versioned
// records, resolves concurrent writers by last-writer-wins (store.Newer:
// Lamport clock, then update time, then origin id — a total, deterministic
// order), and assigns every applied update a monotonically increasing hub
// sequence number that replicas use as a watch cursor. Replicas push with
// POST /v1/push, bootstrap with GET /v1/state, and follow the stream with
// long-polling GET /v1/watch?since=N. The hub never initiates
// connections, so a replica behind NAT or a partition simply reconnects
// and resyncs; nothing on the hub side tracks replica liveness.
//
// Knowledge on the hub is a cache, exactly like every other store layer:
// with an optional backing Backend (dfstored -data uses the embedded KV
// store) it survives restarts, and without one a restarted hub simply
// refills from the replicas' next pushes and resyncs.
package hub

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/dynfb/store"
	"repro/internal/buildinfo"
	"repro/internal/metrics"
)

// Config parameterizes a Hub.
type Config struct {
	// Backing, when non-nil, persists the hub's state: applied updates
	// are merged into it, and its contents seed the hub at startup.
	Backing store.Backend
	// Logger receives structured logs. Default slog.Default().
	Logger *slog.Logger
	// MaxWatchWait bounds a long-poll watch. Default 25s.
	MaxWatchWait time.Duration
}

// entry is one record plus the hub sequence at which it last changed.
type entry struct {
	rec store.VersionedRecord
	seq uint64
}

// Hub is the replication hub state and HTTP API.
type Hub struct {
	cfg   Config
	log   *slog.Logger
	start time.Time
	reg   *metrics.Registry

	mu     sync.Mutex
	recs   map[store.Key]entry
	seq    uint64
	waitCh chan struct{} // closed and replaced on every applied update

	mPushes   *metrics.Counter
	mApplied  *metrics.Counter
	mStale    *metrics.Counter
	mWatches  *metrics.Counter
	mRequests *metrics.Counter
}

// New builds a hub, seeding it from cfg.Backing when one is configured.
func New(cfg Config) (*Hub, error) {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.MaxWatchWait <= 0 {
		cfg.MaxWatchWait = 25 * time.Second
	}
	h := &Hub{
		cfg:    cfg,
		log:    cfg.Logger,
		start:  time.Now(),
		reg:    metrics.NewRegistry(),
		recs:   map[store.Key]entry{},
		waitCh: make(chan struct{}),
	}
	h.mRequests = h.reg.Counter("dfstored_requests_total", "HTTP requests served.")
	h.mPushes = h.reg.Counter("dfstored_pushes_total", "Push requests received.")
	h.mApplied = h.reg.Counter("dfstored_records_applied_total", "Pushed records that won LWW and were applied.")
	h.mStale = h.reg.Counter("dfstored_records_stale_total", "Pushed records that lost LWW and were dropped.")
	h.mWatches = h.reg.Counter("dfstored_watch_requests_total", "Watch long-polls served.")
	h.reg.GaugeFunc("dfstored_records", "Records currently held.", func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		return float64(len(h.recs))
	})
	h.reg.GaugeFunc("dfstored_sequence", "Hub sequence of the latest applied update.", func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		return float64(h.seq)
	})
	h.reg.BuildInfo()

	if cfg.Backing != nil {
		keys, err := cfg.Backing.List()
		if err != nil {
			return nil, fmt.Errorf("hub: seeding from backing store: %w", err)
		}
		for _, k := range keys {
			vr, ok, err := cfg.Backing.Get(k)
			if err != nil {
				return nil, fmt.Errorf("hub: seeding from backing store: %w", err)
			}
			if ok {
				h.seq++
				h.recs[k] = entry{rec: vr, seq: h.seq}
			}
		}
		h.log.Info("hub seeded from backing store", "records", len(h.recs))
	}
	return h, nil
}

// StateResponse is the body of GET /v1/state and GET /v1/watch.
type StateResponse struct {
	// Seq is the hub sequence of the latest applied update.
	Seq uint64 `json:"seq"`
	// Records are the full state (GET /v1/state) or the records changed
	// since the cursor (GET /v1/watch).
	Records []store.VersionedRecord `json:"records"`
}

// PushRequest is the body of POST /v1/push.
type PushRequest struct {
	// Origin identifies the pushing replica (logs only; each record
	// carries its own origin for LWW).
	Origin string `json:"origin,omitempty"`
	// Records are the writes to merge.
	Records []store.VersionedRecord `json:"records"`
}

// PushResponse is the response of POST /v1/push.
type PushResponse struct {
	// Seq is the hub sequence after the push.
	Seq uint64 `json:"seq"`
	// Applied counts the records that won LWW and changed hub state.
	Applied int `json:"applied"`
}

// Apply merges records into the hub under last-writer-wins, returning the
// resulting sequence and how many were applied. It is the programmatic
// core of POST /v1/push.
func (h *Hub) Apply(records []store.VersionedRecord) (uint64, int, error) {
	var toBack []store.VersionedRecord
	stale := 0
	h.mu.Lock()
	for _, rec := range records {
		if rec.Key.Validate() != nil {
			continue
		}
		rec.Record.Section = rec.Key.Section
		cur, ok := h.recs[rec.Key]
		if ok && !store.Newer(rec, cur.rec) {
			stale++
			continue
		}
		h.seq++
		h.recs[rec.Key] = entry{rec: rec, seq: h.seq}
		toBack = append(toBack, rec)
	}
	applied := len(toBack)
	var wake chan struct{}
	if applied > 0 {
		wake = h.waitCh
		h.waitCh = make(chan struct{})
	}
	seq := h.seq
	h.mu.Unlock()

	if wake != nil {
		close(wake)
	}
	h.mApplied.Add(float64(applied))
	h.mStale.Add(float64(stale))
	if h.cfg.Backing != nil {
		for _, rec := range toBack {
			if _, err := store.MergeLWW(h.cfg.Backing, rec); err != nil {
				// The in-memory state already advanced; a backing-store
				// failure costs durability, not correctness.
				h.log.Warn("hub backing store write failed", "key", rec.Key.String(), "err", err)
			}
		}
	}
	return seq, applied, nil
}

// Seq returns the hub sequence of the latest applied update.
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// snapshotSince returns the current sequence, the records changed since
// the cursor, and the channel that will be closed at the next update.
func (h *Hub) snapshotSince(since uint64) (uint64, []store.VersionedRecord, chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []store.VersionedRecord
	for _, e := range h.recs {
		if e.seq > since {
			out = append(out, e.rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Key.String() < out[j].Key.String()
	})
	return h.seq, out, h.waitCh
}

// Handler returns the hub's HTTP API.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/state", h.handleState)
	mux.HandleFunc("GET /v1/watch", h.handleWatch)
	mux.HandleFunc("POST /v1/push", h.handlePush)
	mux.HandleFunc("GET /healthz", h.handleHealthz)
	mux.Handle("GET /metrics", h.reg.Handler())
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.mRequests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

func (h *Hub) handleState(w http.ResponseWriter, r *http.Request) {
	seq, recs, _ := h.snapshotSince(0)
	writeJSON(w, http.StatusOK, StateResponse{Seq: seq, Records: recs})
}

func (h *Hub) handleWatch(w http.ResponseWriter, r *http.Request) {
	h.mWatches.Add(1)
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad since cursor: " + v})
			return
		}
		since = n
	}
	wait := h.cfg.MaxWatchWait
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad wait duration: " + v})
			return
		}
		if d < wait {
			wait = d
		}
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		seq, recs, changed := h.snapshotSince(since)
		if len(recs) > 0 || seq > since {
			writeJSON(w, http.StatusOK, StateResponse{Seq: seq, Records: recs})
			return
		}
		select {
		case <-changed:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, StateResponse{Seq: seq, Records: nil})
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (h *Hub) handlePush(w http.ResponseWriter, r *http.Request) {
	h.mPushes.Add(1)
	var req PushRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad push body: " + err.Error()})
		return
	}
	seq, applied, err := h.Apply(req.Records)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if applied > 0 {
		h.log.Debug("push applied", "origin", req.Origin, "records", len(req.Records), "applied", applied, "seq", seq)
	}
	writeJSON(w, http.StatusOK, PushResponse{Seq: seq, Applied: applied})
}

func (h *Hub) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	records, seq := len(h.recs), h.seq
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        buildinfo.Version(),
		"uptime_seconds": time.Since(h.start).Seconds(),
		"records":        records,
		"seq":            seq,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
