package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// fileSchema is the on-disk envelope of a FileStore.
type fileSchema struct {
	Schema  int               `json:"schema"`
	Records map[string]Record `json:"records"`
}

// FileStore is a Store backed by a single JSON file. Every Save rewrites
// the file through a temporary sibling and an atomic rename, so readers
// (and a crash mid-write) always observe either the old or the new
// contents, never a torn file.
type FileStore struct {
	path string
	mu   sync.Mutex
	recs map[string]Record
	// loadWarning describes a tolerated load failure (corrupt or
	// version-skewed file), for callers that want to report it.
	loadWarning string
}

// OpenFile opens (or initializes) the store file at path. A missing file
// yields an empty store. A truncated, corrupt, or schema-mismatched file
// also yields an empty store — the knowledge is re-learnable, and failing
// to start over a damaged cache would be worse than a cold start; the
// tolerated condition is reported by LoadWarning. Only environmental
// errors (e.g. an unreadable file that exists) are returned.
func OpenFile(path string) (*FileStore, error) {
	if path == "" {
		return nil, fmt.Errorf("store: empty file path")
	}
	f := &FileStore{path: path, recs: map[string]Record{}}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return f, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	var sc fileSchema
	if err := json.Unmarshal(data, &sc); err != nil {
		f.loadWarning = fmt.Sprintf("corrupt store file %s ignored: %v", path, err)
		return f, nil
	}
	if sc.Schema != SchemaVersion {
		f.loadWarning = fmt.Sprintf("store file %s has schema %d, want %d; starting empty", path, sc.Schema, SchemaVersion)
		return f, nil
	}
	for name, rec := range sc.Records {
		rec.Section = name
		f.recs[name] = rec
	}
	return f, nil
}

// Path returns the backing file path.
func (f *FileStore) Path() string { return f.path }

// LoadWarning reports a tolerated load failure ("" when the file loaded
// cleanly or did not exist).
func (f *FileStore) LoadWarning() string { return f.loadWarning }

// Load implements Store.
func (f *FileStore) Load(section string) (Record, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec, ok := f.recs[section]
	if !ok {
		return Record{}, false, nil
	}
	return cloneRecord(rec), true, nil
}

// Save implements Store. The whole store is rewritten atomically.
func (f *FileStore) Save(rec Record) error {
	if rec.Section == "" {
		return fmt.Errorf("store: record has no section name")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recs[rec.Section] = cloneRecord(rec)
	return f.flushLocked()
}

// Sections implements Store.
func (f *FileStore) Sections() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return sortedKeys(f.recs), nil
}

// flushLocked writes the store to a temporary file in the same directory
// and renames it over the target, so the visible file is always complete.
func (f *FileStore) flushLocked() error {
	sc := fileSchema{Schema: SchemaVersion, Records: f.recs}
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	dir := filepath.Dir(f.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(f.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, f.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
