package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// fileSchema is the on-disk envelope of a FileStore (and of a KVStore
// snapshot): the schema version and the keyed, versioned records.
type fileSchema struct {
	Schema  int               `json:"schema"`
	Records []VersionedRecord `json:"records"`
}

// fileSchemaV1 is the original envelope: a section-keyed map of records
// from before keys carried tenants and environments. It is migrated on
// load so a pre-fleet policy file keeps its knowledge.
type fileSchemaV1 struct {
	Schema  int               `json:"schema"`
	Records map[string]Record `json:"records"`
}

// FileStore is a store backed by a single JSON file. Every Put rewrites
// the file through a temporary sibling and an atomic rename, so readers
// (and a crash mid-write) always observe either the old or the new
// contents, never a torn file; the temporary file and the directory are
// both fsynced so the rename is durable once Put returns. It implements
// both Store and Backend.
type FileStore struct {
	path string
	mu   sync.Mutex
	recs map[Key]VersionedRecord
	// loadWarning describes a tolerated load failure (corrupt or
	// version-skewed file), for callers that want to report it.
	loadWarning string
	watch       watchers
}

// OpenFile opens (or initializes) the store file at path. A missing file
// yields an empty store. A truncated, corrupt, or schema-mismatched file
// also yields an empty store — the knowledge is re-learnable, and failing
// to start over a damaged cache would be worse than a cold start; the
// tolerated condition is reported by LoadWarning. A schema-1 file (from
// before the fleet rework) is migrated in place of being discarded. Only
// environmental errors (e.g. an unreadable file that exists) are
// returned.
func OpenFile(path string) (*FileStore, error) {
	if path == "" {
		return nil, fmt.Errorf("store: empty file path")
	}
	f := &FileStore{path: path, recs: map[Key]VersionedRecord{}}
	// Sweep temporaries a crashed write may have left beside the store;
	// they were never renamed, so their contents are possibly torn and
	// must never be read as a store.
	dir, base := filepath.Dir(path), filepath.Base(path)
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if isTempName(base, e.Name()) {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return f, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	recs, warn := decodeRecords(data, path)
	f.recs = recs
	f.loadWarning = warn
	return f, nil
}

// decodeRecords parses a store file (either schema), tolerating damage:
// the second result is a warning describing why the result is empty (""
// when the file decoded cleanly).
func decodeRecords(data []byte, path string) (map[Key]VersionedRecord, string) {
	recs := map[Key]VersionedRecord{}
	var probe struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return recs, fmt.Sprintf("corrupt store file %s ignored: %v", path, err)
	}
	switch probe.Schema {
	case 1:
		var sc fileSchemaV1
		if err := json.Unmarshal(data, &sc); err != nil {
			return recs, fmt.Sprintf("corrupt store file %s ignored: %v", path, err)
		}
		for name, rec := range sc.Records {
			rec.Section = name
			k := Key{Section: name, Env: rec.Fingerprint.Hash()}
			recs[k] = VersionedRecord{Key: k, Version: 1, Clock: 1, Record: rec}
		}
		return recs, ""
	case SchemaVersion:
		var sc fileSchema
		if err := json.Unmarshal(data, &sc); err != nil {
			return recs, fmt.Sprintf("corrupt store file %s ignored: %v", path, err)
		}
		for _, vr := range sc.Records {
			if vr.Key.Validate() != nil {
				continue
			}
			vr.Record.Section = vr.Key.Section
			recs[vr.Key] = vr
		}
		return recs, ""
	default:
		return recs, fmt.Sprintf("store file %s has schema %d, want %d; starting empty",
			path, probe.Schema, SchemaVersion)
	}
}

// encodeRecords renders the records in the current schema, sorted by key
// so the output is deterministic (byte-identical files for identical
// contents).
func encodeRecords(recs map[Key]VersionedRecord) ([]byte, error) {
	sc := fileSchema{Schema: SchemaVersion, Records: make([]VersionedRecord, 0, len(recs))}
	for _, vr := range recs {
		sc.Records = append(sc.Records, vr)
	}
	sort.Slice(sc.Records, func(i, j int) bool { return sc.Records[i].Key.less(sc.Records[j].Key) })
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// writeFileAtomic writes data to path through a fsynced temporary sibling
// and an atomic rename, then fsyncs the directory so the rename itself
// survives a crash. Readers never observe a torn file: the temporary name
// carries a ".tmp" suffix readers ignore, and the final name only ever
// points at complete contents.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	// The data must be on stable storage before the rename publishes the
	// name, or a crash can leave a fully renamed but empty/torn file.
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	// And the rename must reach the directory, or a crash forgets it.
	return syncDir(dir)
}

// syncDir fsyncs a directory; on platforms where directories cannot be
// fsynced the error is ignored (the rename is still atomic, just not
// durably ordered).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return fmt.Errorf("store: fsync %s: %w", dir, err)
	}
	return nil
}

// isTempName reports whether a directory entry is one of our in-flight
// temporary files (never to be read as a store).
func isTempName(base, name string) bool {
	return strings.HasPrefix(name, base+".tmp")
}

// Path returns the backing file path.
func (f *FileStore) Path() string { return f.path }

// LoadWarning reports a tolerated load failure ("" when the file loaded
// cleanly or did not exist).
func (f *FileStore) LoadWarning() string { return f.loadWarning }

// Get implements Backend.
func (f *FileStore) Get(k Key) (VersionedRecord, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	vr, ok := f.recs[k]
	if !ok {
		return VersionedRecord{}, false, nil
	}
	return cloneVersioned(vr), true, nil
}

// Put implements Backend. The whole store is rewritten atomically and
// durably before Put returns.
func (f *FileStore) Put(rec VersionedRecord, prev uint64) (VersionedRecord, error) {
	if err := validatePut(rec); err != nil {
		return VersionedRecord{}, err
	}
	f.mu.Lock()
	cur, ok := f.recs[rec.Key]
	curVersion := uint64(0)
	if ok {
		curVersion = cur.Version
	}
	if curVersion != prev {
		f.mu.Unlock()
		return VersionedRecord{}, fmt.Errorf("%w: key %s at version %d, caller expected %d",
			ErrConflict, rec.Key, curVersion, prev)
	}
	stored := cloneVersioned(rec)
	stored.Version = curVersion + 1
	f.recs[rec.Key] = stored
	if err := f.flushLocked(); err != nil {
		// Roll the map back so memory and disk stay in agreement.
		if ok {
			f.recs[rec.Key] = cur
		} else {
			delete(f.recs, rec.Key)
		}
		f.mu.Unlock()
		return VersionedRecord{}, err
	}
	out := cloneVersioned(stored)
	f.mu.Unlock()
	f.watch.notify(out)
	return cloneVersioned(out), nil
}

// List implements Backend.
func (f *FileStore) List() ([]Key, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]Key, 0, len(f.recs))
	for k := range f.recs {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys, nil
}

// Watch implements Backend.
func (f *FileStore) Watch(fn func(VersionedRecord)) (cancel func()) {
	return f.watch.add(fn)
}

// Close implements Backend (the file is already durable after every Put).
func (f *FileStore) Close() error { return nil }

// Load implements Store.
func (f *FileStore) Load(section string) (Record, bool, error) {
	return viewLoad(f, "", section)
}

// LoadFor implements EnvLoader.
func (f *FileStore) LoadFor(section string, fp Fingerprint) (Record, bool, error) {
	return viewLoadFor(f, "", section, fp)
}

// Save implements Store.
func (f *FileStore) Save(rec Record) error {
	return viewSave(f, "", rec)
}

// Sections implements Store.
func (f *FileStore) Sections() ([]string, error) {
	return viewSections(f, "")
}

// flushLocked writes the store to a temporary file in the same directory
// and renames it over the target, fsyncing both the data and the
// directory entry, so the visible file is always complete and a completed
// Put survives a crash.
func (f *FileStore) flushLocked() error {
	data, err := encodeRecords(f.recs)
	if err != nil {
		return err
	}
	return writeFileAtomic(f.path, data)
}
