package store_test

import (
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/dynfb/store"
)

// partitionTransport is an http.RoundTripper with a switch: while down, every
// request fails as if the network were cut. It makes partitions deterministic
// — no listeners are killed, no ports reused.
type partitionTransport struct {
	down  atomic.Bool
	inner http.RoundTripper
}

func (p *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if p.down.Load() {
		return nil, errors.New("partition: network unreachable")
	}
	return p.inner.RoundTrip(req)
}

func openReplica(t *testing.T, hubURL, origin string, rt http.RoundTripper) *store.ReplStore {
	t.Helper()
	r, err := store.OpenRepl(store.ReplConfig{
		HubURL:             hubURL,
		Origin:             origin,
		InitialSyncTimeout: 2 * time.Second,
		PollWait:           200 * time.Millisecond,
		RetryMin:           10 * time.Millisecond,
		RetryMax:           50 * time.Millisecond,
		Logger:             quietLogger(),
		HTTPClient:         &http.Client{Transport: rt, Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func waitUntil(t *testing.T, what string, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if fn() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplPartitionDegradesAndResyncs cuts one replica off mid-flight. Writes
// on both sides of the cut must keep succeeding, and on reconnect both sides
// must converge without losing either's records.
func TestReplPartitionDegradesAndResyncs(t *testing.T) {
	hubURL := startHub(t)
	pt := &partitionTransport{inner: http.DefaultTransport}
	a := openReplica(t, hubURL, "replica-a", http.DefaultTransport)
	b := openReplica(t, hubURL, "replica-b", pt)

	if !b.Status().Connected {
		t.Fatal("replica-b not connected after bootstrap")
	}

	// Cut replica-b off.
	pt.down.Store(true)

	// A write on the partitioned side must succeed locally and be queued.
	if err := b.Save(confRecord("from-b")); err != nil {
		t.Fatalf("partitioned write failed: %v", err)
	}
	if got, ok, _ := b.Load("from-b"); !ok || got.Winner == "" {
		t.Fatal("partitioned write not readable locally")
	}
	waitUntil(t, "replica-b to notice the partition", func() bool {
		st := b.Status()
		return !st.Connected && st.Pending > 0
	})

	// Meanwhile the healthy side keeps writing through the hub.
	if err := a.Save(confRecord("from-a")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "replica-a's write to reach the hub", func() bool {
		return a.Status().Pending == 0
	})
	if _, ok, _ := b.Load("from-a"); ok {
		t.Fatal("partitioned replica saw a peer write through the cut")
	}

	// Heal. Replica-b must resync: push its pending write, pull a's.
	pt.down.Store(false)
	waitUntil(t, "replica-b to resync", func() bool {
		st := b.Status()
		return st.Connected && st.Pending == 0
	})
	waitUntil(t, "a's record to reach b", func() bool {
		_, ok, _ := b.Load("from-a")
		return ok
	})
	waitUntil(t, "b's record to reach a", func() bool {
		_, ok, _ := a.Load("from-b")
		return ok
	})
	if lag := b.Status().SyncLag(time.Now()); lag < 0 || lag > time.Minute {
		t.Errorf("sync lag %v after resync", lag)
	}
}

// TestReplBootsDegradedThenRecovers opens a replica while the hub is
// unreachable: it must come up local-only (writes succeed) and converge once
// the network returns.
func TestReplBootsDegradedThenRecovers(t *testing.T) {
	hubURL := startHub(t)
	a := openReplica(t, hubURL, "replica-a", http.DefaultTransport)
	if err := a.Save(confRecord("early")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "early record to reach the hub", func() bool {
		return a.Status().Pending == 0
	})

	pt := &partitionTransport{inner: http.DefaultTransport}
	pt.down.Store(true)
	b, err := store.OpenRepl(store.ReplConfig{
		HubURL:             hubURL,
		Origin:             "replica-b",
		InitialSyncTimeout: 50 * time.Millisecond,
		PollWait:           200 * time.Millisecond,
		RetryMin:           10 * time.Millisecond,
		RetryMax:           50 * time.Millisecond,
		Logger:             quietLogger(),
		HTTPClient:         &http.Client{Transport: pt, Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatalf("boot behind a partition must not fail: %v", err)
	}
	t.Cleanup(func() { b.Close() })

	if b.Status().Connected {
		t.Error("replica reports connected behind a partition")
	}
	if err := b.Save(confRecord("offline")); err != nil {
		t.Fatalf("local-only write failed: %v", err)
	}
	if _, ok, _ := b.Load("early"); ok {
		t.Error("hub state visible through a partition")
	}

	pt.down.Store(false)
	waitUntil(t, "degraded replica to converge", func() bool {
		st := b.Status()
		if !st.Connected || st.Pending != 0 {
			return false
		}
		_, okEarly, _ := b.Load("early")
		_, okOff, _ := a.Load("offline")
		return okEarly && okOff
	})
}

// TestReplConcurrentWritersConverge hammers one key from two replicas under
// last-writer-wins; both must settle on the same record.
func TestReplConcurrentWritersConverge(t *testing.T) {
	hubURL := startHub(t)
	a := openReplica(t, hubURL, "replica-a", http.DefaultTransport)
	b := openReplica(t, hubURL, "replica-b", http.DefaultTransport)

	for i := 0; i < 10; i++ {
		rec := confRecord("contested")
		rec.Rounds = i
		var err error
		if i%2 == 0 {
			err = a.Save(rec)
		} else {
			err = b.Save(rec)
		}
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	waitUntil(t, "both replicas to agree", func() bool {
		if a.Status().Pending != 0 || b.Status().Pending != 0 {
			return false
		}
		ra, okA, _ := a.Load("contested")
		rb, okB, _ := b.Load("contested")
		return okA && okB && ra.Rounds == rb.Rounds
	})
}

// TestReplWatchDeliversPeerUpdates verifies the live warm-start signal: a
// watch on one replica fires when a peer's record arrives via the hub.
func TestReplWatchDeliversPeerUpdates(t *testing.T) {
	hubURL := startHub(t)
	a := openReplica(t, hubURL, "replica-a", http.DefaultTransport)
	b := openReplica(t, hubURL, "replica-b", http.DefaultTransport)

	got := make(chan store.VersionedRecord, 8)
	cancel := b.Watch(func(vr store.VersionedRecord) { got <- vr })
	defer cancel()

	if err := a.Save(confRecord("observed")); err != nil {
		t.Fatal(err)
	}
	select {
	case vr := <-got:
		if vr.Key.Section != "observed" {
			t.Errorf("watch fired for %q, want observed", vr.Key.Section)
		}
		if vr.Origin != "replica-a" {
			t.Errorf("origin %q, want replica-a", vr.Origin)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never fired for a peer update")
	}
}

// TestReplCloseFlushesPending verifies a drain races nothing: records written
// just before Close still reach the hub, so a successor replica inherits
// them.
func TestReplCloseFlushesPending(t *testing.T) {
	hubURL := startHub(t)
	a := openReplica(t, hubURL, "replica-a", http.DefaultTransport)
	for i := 0; i < 4; i++ {
		if err := a.Save(confRecord(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	b := openReplica(t, hubURL, "replica-b", http.DefaultTransport)
	for i := 0; i < 4; i++ {
		if _, ok, _ := b.Load(fmt.Sprintf("s%d", i)); !ok {
			t.Errorf("record s%d lost across drain", i)
		}
	}
}
