package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func sampleRecord(section string) Record {
	return Record{
		Section:        section,
		Fingerprint:    Fingerprint{GoMaxProcs: 8, Workers: 4, VariantsHash: VariantsHash([]string{"a", "b"})},
		Winner:         "a",
		WinnerOverhead: 0.125,
		Rounds:         3,
		Policies: []PolicyRecord{
			{Name: "a", TimesSampled: 3, TimesChosen: 3, MeanOverhead: 0.12, LastOverhead: 0.125},
			{Name: "b", TimesSampled: 3, TimesChosen: 0, MeanOverhead: 0.4, LastOverhead: 0.39},
		},
		UpdatedUnix: 1700000000,
	}
}

func TestVariantsHashOrderAndContentSensitive(t *testing.T) {
	ab := VariantsHash([]string{"a", "b"})
	ba := VariantsHash([]string{"b", "a"})
	if ab == ba {
		t.Error("hash ignores order")
	}
	// The separator must prevent boundary aliasing: ["ab"] vs ["a","b"].
	if VariantsHash([]string{"ab"}) == VariantsHash([]string{"a", "b"}) {
		t.Error("hash aliases across name boundaries")
	}
	if ab != VariantsHash([]string{"a", "b"}) {
		t.Error("hash not deterministic")
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	m := NewMemStore()
	if _, ok, err := m.Load("missing"); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	rec := sampleRecord("sec")
	if err := m.Save(rec); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's copy must not reach the store.
	rec.Policies[0].MeanOverhead = 99
	got, ok, err := m.Load("sec")
	if !ok || err != nil {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.Policies[0].MeanOverhead != 0.12 {
		t.Error("store aliases the caller's slice")
	}
	// And mutating the loaded copy must not reach the store either.
	got.Policies[0].MeanOverhead = 77
	again, _, _ := m.Load("sec")
	if again.Policies[0].MeanOverhead != 0.12 {
		t.Error("load aliases the stored slice")
	}
	if err := m.Save(Record{}); err == nil {
		t.Error("nameless record accepted")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policies.json")
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.LoadWarning() != "" {
		t.Errorf("missing file produced warning %q", fs.LoadWarning())
	}
	if err := fs.Save(sampleRecord("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save(sampleRecord("beta")); err != nil {
		t.Fatal(err)
	}

	// A fresh open must see both records.
	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	names, err := fs2.Sections()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("sections = %v", names)
	}
	got, ok, err := fs2.Load("alpha")
	if !ok || err != nil {
		t.Fatalf("load alpha: ok=%v err=%v", ok, err)
	}
	want := sampleRecord("alpha")
	if got.Winner != want.Winner || got.WinnerOverhead != want.WinnerOverhead ||
		got.Fingerprint != want.Fingerprint || len(got.Policies) != 2 {
		t.Errorf("round trip mismatch: %+v", got)
	}

	// The visible file must always be complete, parseable JSON with the
	// current schema (atomic rename, never a torn write).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sc fileSchema
	if err := json.Unmarshal(data, &sc); err != nil {
		t.Fatalf("store file not parseable: %v", err)
	}
	if sc.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", sc.Schema, SchemaVersion)
	}
	// No leftover temporary files.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the store file", len(entries))
	}
}

func TestFileStoreCorruptLoadsEmpty(t *testing.T) {
	cases := map[string]string{
		"garbage":   "not json at all {{{",
		"truncated": `{"schema":1,"records":{"sec":{"section":"sec","win`,
		"empty":     "",
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "policies.json")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			fs, err := OpenFile(path)
			if err != nil {
				t.Fatalf("corrupt file must load as empty, got error %v", err)
			}
			if fs.LoadWarning() == "" {
				t.Error("no warning for corrupt file")
			}
			if names, _ := fs.Sections(); len(names) != 0 {
				t.Errorf("corrupt store not empty: %v", names)
			}
			// The store must remain usable: saving repairs the file.
			if err := fs.Save(sampleRecord("sec")); err != nil {
				t.Fatal(err)
			}
			fs2, err := OpenFile(path)
			if err != nil || fs2.LoadWarning() != "" {
				t.Fatalf("repaired file still bad: err=%v warn=%q", err, fs2.LoadWarning())
			}
		})
	}
}

// TestFileStoreTornTempNeverVisible simulates a crash mid-write: the
// temporary sibling a crashed writeFileAtomic leaves behind must never be
// read as the store, must not shadow the real file, and is swept away by
// the next open.
func TestFileStoreTornTempNeverVisible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policies.json")
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save(sampleRecord("alpha")); err != nil {
		t.Fatal(err)
	}
	// A crash between CreateTemp and rename leaves a torn temp sibling.
	torn := filepath.Join(dir, "policies.json.tmp123456")
	if err := os.WriteFile(torn, []byte(`{"schema":2,"records":[{"key":{"sec`), 0o600); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.LoadWarning() != "" {
		t.Errorf("torn temp file tainted the load: %q", fs2.LoadWarning())
	}
	got, ok, err := fs2.Load("alpha")
	if !ok || err != nil || got.Winner != "a" {
		t.Fatalf("real store not loaded: ok=%v err=%v winner=%q", ok, err, got.Winner)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Error("stale temp file not swept on open")
	}
	// Only the real store file remains.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "policies.json" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("directory = %v, want just policies.json", names)
	}
	// And a Put through the fresh handle still round-trips durably.
	if err := fs2.Save(sampleRecord("beta")); err != nil {
		t.Fatal(err)
	}
	fs3, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if names, _ := fs3.Sections(); len(names) != 2 {
		t.Errorf("sections after repair = %v, want 2", names)
	}
}

func TestFileStoreSchemaMismatchLoadsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policies.json")
	future := fmt.Sprintf(`{"schema":%d,"records":{"sec":{"section":"sec"}}}`, SchemaVersion+1)
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.LoadWarning() == "" {
		t.Error("no warning for schema mismatch")
	}
	if _, ok, _ := fs.Load("sec"); ok {
		t.Error("record from a different schema version surfaced")
	}
}

func TestFileStoreConcurrentSaves(t *testing.T) {
	path := filepath.Join(t.TempDir(), "policies.json")
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rec := sampleRecord(fmt.Sprintf("sec%d", g%4))
				rec.Rounds = i
				if err := fs.Save(rec); err != nil {
					t.Errorf("save: %v", err)
					return
				}
				if _, _, err := fs.Load("sec0"); err != nil {
					t.Errorf("load: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	names, _ := fs2.Sections()
	if len(names) != 4 {
		t.Errorf("sections = %v, want 4", names)
	}
}
