package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// KVStore is the embedded key-value backend: a directory holding a JSON
// snapshot plus a write-ahead log of CRC-framed puts. A Put appends one
// frame to the log and fsyncs it before returning, so a completed Put
// survives a crash without rewriting the whole store (FileStore's cost
// model); the log is folded into a fresh snapshot — written through the
// same fsynced atomic-rename path as FileStore — once it grows past a
// threshold. A torn or corrupt log tail (the partial frame a crash
// mid-append leaves behind) is detected by its length/checksum and
// truncated away on open: everything before it is kept, and the damaged
// suffix is never visible to readers. It implements both Store and
// Backend.
type KVStore struct {
	dir string

	mu        sync.Mutex
	recs      map[Key]VersionedRecord
	wal       *os.File
	walBytes  int64
	walFrames int
	closed    bool
	watch     watchers
	// loadWarning describes tolerated damage found on open (corrupt
	// snapshot, truncated log tail).
	loadWarning string
}

const (
	kvSnapshotName = "snapshot.json"
	kvWALName      = "wal.log"
	// kvCompactBytes and kvCompactFrames bound the write-ahead log; the
	// first Put past either threshold triggers compaction.
	kvCompactBytes  = 1 << 20
	kvCompactFrames = 4096
	// kvFrameHeader is the per-frame header: payload length and CRC-32.
	kvFrameHeader = 8
	// kvMaxFrame bounds a single frame; longer length prefixes are
	// treated as corruption rather than allocated.
	kvMaxFrame = 16 << 20
)

// OpenKV opens (or initializes) the embedded KV store rooted at dir,
// creating the directory if needed. Damage is tolerated the same way
// FileStore tolerates it: a corrupt snapshot loads as empty, a torn log
// tail is truncated, and the condition is reported by LoadWarning rather
// than failing the open.
func OpenKV(dir string) (*KVStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty KV directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &KVStore{dir: dir, recs: map[Key]VersionedRecord{}}

	snapPath := filepath.Join(dir, kvSnapshotName)
	if data, err := os.ReadFile(snapPath); err == nil {
		recs, warn := decodeRecords(data, snapPath)
		s.recs = recs
		s.loadWarning = warn
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}

	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, kvWALName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	if st, err := wal.Stat(); err == nil {
		s.walBytes = st.Size()
	}
	return s, nil
}

// replayWAL folds the write-ahead log into the in-memory state, stopping
// at — and truncating — the first torn or corrupt frame so a crash
// mid-append never surfaces partial data.
func (s *KVStore) replayWAL() error {
	path := filepath.Join(s.dir, kvWALName)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	var offset int64
	header := make([]byte, kvFrameHeader)
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			if err == io.EOF {
				return nil // clean end of log
			}
			// A short header is the torn tail of a crashed append.
			return s.truncateWAL(path, offset, "short frame header")
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > kvMaxFrame {
			return s.truncateWAL(path, offset, fmt.Sprintf("implausible frame length %d", length))
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return s.truncateWAL(path, offset, "torn frame payload")
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return s.truncateWAL(path, offset, "frame checksum mismatch")
		}
		var vr VersionedRecord
		if err := json.Unmarshal(payload, &vr); err != nil || vr.Key.Validate() != nil {
			return s.truncateWAL(path, offset, "undecodable frame")
		}
		vr.Record.Section = vr.Key.Section
		s.recs[vr.Key] = vr
		offset += int64(kvFrameHeader) + int64(length)
		s.walFrames++
	}
}

// truncateWAL cuts the log back to the last complete frame.
func (s *KVStore) truncateWAL(path string, offset int64, why string) error {
	if err := os.Truncate(path, offset); err != nil {
		return fmt.Errorf("store: truncating damaged WAL: %w", err)
	}
	s.loadWarning = fmt.Sprintf("damaged WAL tail in %s truncated at byte %d: %s", path, offset, why)
	return nil
}

// Dir returns the backing directory.
func (s *KVStore) Dir() string { return s.dir }

// LoadWarning reports tolerated damage found on open ("" when the store
// loaded cleanly).
func (s *KVStore) LoadWarning() string { return s.loadWarning }

// Get implements Backend.
func (s *KVStore) Get(k Key) (VersionedRecord, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vr, ok := s.recs[k]
	if !ok {
		return VersionedRecord{}, false, nil
	}
	return cloneVersioned(vr), true, nil
}

// Put implements Backend: one fsynced frame appended to the write-ahead
// log, plus a compaction when the log has grown past its threshold.
func (s *KVStore) Put(rec VersionedRecord, prev uint64) (VersionedRecord, error) {
	if err := validatePut(rec); err != nil {
		return VersionedRecord{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return VersionedRecord{}, fmt.Errorf("store: put on closed KV store")
	}
	cur, ok := s.recs[rec.Key]
	curVersion := uint64(0)
	if ok {
		curVersion = cur.Version
	}
	if curVersion != prev {
		s.mu.Unlock()
		return VersionedRecord{}, fmt.Errorf("%w: key %s at version %d, caller expected %d",
			ErrConflict, rec.Key, curVersion, prev)
	}
	stored := cloneVersioned(rec)
	stored.Version = curVersion + 1
	if err := s.appendLocked(stored); err != nil {
		s.mu.Unlock()
		return VersionedRecord{}, err
	}
	s.recs[rec.Key] = stored
	if s.walBytes > kvCompactBytes || s.walFrames > kvCompactFrames {
		// Compaction failure is not a Put failure: the WAL still holds
		// the write; the next Put retries the fold.
		_ = s.compactLocked()
	}
	out := cloneVersioned(stored)
	s.mu.Unlock()
	s.watch.notify(out)
	return cloneVersioned(out), nil
}

// appendLocked writes one framed record to the log and fsyncs it.
func (s *KVStore) appendLocked(vr VersionedRecord) error {
	payload, err := json.Marshal(vr)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	frame := make([]byte, kvFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[kvFrameHeader:], payload)
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walBytes += int64(len(frame))
	s.walFrames++
	return nil
}

// compactLocked folds the current state into the snapshot and resets the
// log. Ordering matters for crash safety: the snapshot (which embeds
// every logged write) is made durable before the log is truncated, so no
// window exists in which a write lives in neither file.
func (s *KVStore) compactLocked() error {
	data, err := encodeRecords(s.recs)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.dir, kvSnapshotName), data); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walBytes = 0
	s.walFrames = 0
	return nil
}

// Compact folds the write-ahead log into the snapshot immediately.
func (s *KVStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: compact on closed KV store")
	}
	return s.compactLocked()
}

// List implements Backend.
func (s *KVStore) List() ([]Key, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]Key, 0, len(s.recs))
	for k := range s.recs {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys, nil
}

// Watch implements Backend.
func (s *KVStore) Watch(fn func(VersionedRecord)) (cancel func()) {
	return s.watch.add(fn)
}

// Close compacts and closes the store.
func (s *KVStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.compactLocked()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load implements Store.
func (s *KVStore) Load(section string) (Record, bool, error) {
	return viewLoad(s, "", section)
}

// LoadFor implements EnvLoader.
func (s *KVStore) LoadFor(section string, fp Fingerprint) (Record, bool, error) {
	return viewLoadFor(s, "", section, fp)
}

// Save implements Store.
func (s *KVStore) Save(rec Record) error {
	return viewSave(s, "", rec)
}

// Sections implements Store.
func (s *KVStore) Sections() ([]string, error) {
	return viewSections(s, "")
}
