package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"sync"
	"time"
)

// ReplConfig parameterizes a ReplStore.
type ReplConfig struct {
	// HubURL is the base URL of the dfstored hub (e.g.
	// "http://hub:9090"). Required.
	HubURL string
	// Origin identifies this replica in last-writer-wins resolution and
	// in hub logs. Default "host:pid".
	Origin string
	// Local is the backend holding this replica's copy of the fleet's
	// knowledge. Default a fresh MemStore; pass an OpenKV store to keep
	// the copy across restarts (a replica then warm-starts even while
	// partitioned from the hub).
	Local Backend
	// InitialSyncTimeout bounds the blocking bootstrap sync in OpenRepl;
	// when it expires the replica starts degraded (local-only) and keeps
	// retrying in the background. Default 5s; negative skips the
	// blocking sync entirely.
	InitialSyncTimeout time.Duration
	// PollWait is the long-poll watch duration asked of the hub.
	// Default 20s.
	PollWait time.Duration
	// RetryMin and RetryMax bound the reconnect backoff. Defaults
	// 250ms and 15s.
	RetryMin, RetryMax time.Duration
	// Logger receives structured logs. Default slog.Default().
	Logger *slog.Logger
	// HTTPClient overrides the hub transport (tests use it to inject
	// partitions). Default a client with sane timeouts.
	HTTPClient *http.Client
}

// ReplStatus is a snapshot of a replica's link to the hub.
type ReplStatus struct {
	// Connected reports whether the last hub exchange succeeded; false
	// means the replica is degraded to local-only and retrying.
	Connected bool `json:"connected"`
	// LastSyncUnixNano is the wall clock of the last successful hub
	// exchange (0 before the first).
	LastSyncUnixNano int64 `json:"last_sync_unix_nano"`
	// HubSeq is the watch cursor: the hub sequence this replica has
	// caught up to.
	HubSeq uint64 `json:"hub_seq"`
	// Pending counts local writes not yet acknowledged by the hub.
	Pending int `json:"pending"`
}

// SyncLag returns how long ago the last successful hub exchange was, or
// -1 before the first one.
func (s ReplStatus) SyncLag(now time.Time) time.Duration {
	if s.LastSyncUnixNano == 0 {
		return -1
	}
	return now.Sub(time.Unix(0, s.LastSyncUnixNano))
}

// ReplStore replicates a local backend through a dfstored hub: local
// writes are pushed to the hub, and peer updates stream back through a
// long-polling watch, merged under last-writer-wins. The hub is an
// availability optimization, never a dependency: when it is unreachable
// the replica degrades to local-only operation (Puts keep succeeding,
// marked pending), and on reconnect it resyncs — pull the hub's state,
// merge, push everything local — so the fleet reconverges without losing
// either side's newer records. It implements both Store and Backend.
type ReplStore struct {
	cfg    ReplConfig
	local  Backend
	log    *slog.Logger
	client *http.Client
	origin string

	mu        sync.Mutex
	pending   map[Key]VersionedRecord
	connected bool
	lastSync  time.Time
	hubSeq    uint64
	closed    bool

	wake   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// OpenRepl connects a replica to the hub. It attempts one blocking
// bootstrap sync (bounded by InitialSyncTimeout) so that a replica booted
// after its peers immediately sees their knowledge — the warm-start path
// — and then maintains the link in the background, degrading to
// local-only over partitions and resyncing on reconnect.
func OpenRepl(cfg ReplConfig) (*ReplStore, error) {
	if cfg.HubURL == "" {
		return nil, fmt.Errorf("store: replication needs a hub URL")
	}
	if _, err := url.Parse(cfg.HubURL); err != nil {
		return nil, fmt.Errorf("store: bad hub URL: %w", err)
	}
	if cfg.Origin == "" {
		host, _ := os.Hostname()
		cfg.Origin = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.Local == nil {
		cfg.Local = NewMemStore()
	}
	if cfg.InitialSyncTimeout == 0 {
		cfg.InitialSyncTimeout = 5 * time.Second
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 20 * time.Second
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 250 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = 15 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: cfg.PollWait + 10*time.Second}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &ReplStore{
		cfg:     cfg,
		local:   cfg.Local,
		log:     cfg.Logger.With("origin", cfg.Origin),
		client:  cfg.HTTPClient,
		origin:  cfg.Origin,
		pending: map[Key]VersionedRecord{},
		wake:    make(chan struct{}, 1),
		ctx:     ctx,
		cancel:  cancel,
	}
	if cfg.InitialSyncTimeout > 0 {
		syncCtx, done := context.WithTimeout(ctx, cfg.InitialSyncTimeout)
		if err := r.resync(syncCtx); err != nil {
			r.log.Warn("hub unreachable at boot; starting local-only", "hub", cfg.HubURL, "err", err)
		}
		done()
	}
	r.wg.Add(2)
	go r.watchLoop()
	go r.pushLoop()
	return r, nil
}

// Origin returns this replica's identity.
func (r *ReplStore) Origin() string { return r.origin }

// HubURL returns the hub this replica replicates through.
func (r *ReplStore) HubURL() string { return r.cfg.HubURL }

// Status returns a snapshot of the hub link.
func (r *ReplStore) Status() ReplStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ReplStatus{
		Connected: r.connected,
		HubSeq:    r.hubSeq,
		Pending:   len(r.pending),
	}
	if !r.lastSync.IsZero() {
		st.LastSyncUnixNano = r.lastSync.UnixNano()
	}
	return st
}

// Get implements Backend.
func (r *ReplStore) Get(k Key) (VersionedRecord, bool, error) { return r.local.Get(k) }

// List implements Backend.
func (r *ReplStore) List() ([]Key, error) { return r.local.List() }

// Watch implements Backend: watchers observe every applied local write,
// whether it originated here or merged in from a peer.
func (r *ReplStore) Watch(fn func(VersionedRecord)) (cancel func()) { return r.local.Watch(fn) }

// Put implements Backend: the write applies locally first (so the replica
// keeps its own knowledge even while partitioned) and is then pushed to
// the hub asynchronously.
func (r *ReplStore) Put(rec VersionedRecord, prev uint64) (VersionedRecord, error) {
	rec.Origin = r.origin
	stored, err := r.local.Put(rec, prev)
	if err != nil {
		return stored, err
	}
	r.mu.Lock()
	if !r.closed {
		r.pending[stored.Key] = stored
	}
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return stored, nil
}

// Close stops replication (after one best-effort push of pending writes)
// and closes the local backend.
func (r *ReplStore) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	// Stop the loops first so the final flush below is the only pusher,
	// then flush what we can without holding shutdown hostage to a
	// partition.
	r.cancel()
	r.wg.Wait()
	flushCtx, done := context.WithTimeout(context.Background(), 2*time.Second)
	r.pushPending(flushCtx)
	done()
	return r.local.Close()
}

// Load implements Store.
func (r *ReplStore) Load(section string) (Record, bool, error) {
	return viewLoad(r, "", section)
}

// LoadFor implements EnvLoader.
func (r *ReplStore) LoadFor(section string, fp Fingerprint) (Record, bool, error) {
	return viewLoadFor(r, "", section, fp)
}

// Save implements Store.
func (r *ReplStore) Save(rec Record) error {
	return viewSave(r, "", rec)
}

// Sections implements Store.
func (r *ReplStore) Sections() ([]string, error) {
	return viewSections(r, "")
}

// hubState mirrors hub.StateResponse without importing the hub package
// (the hub package imports store).
type hubState struct {
	Seq     uint64            `json:"seq"`
	Records []VersionedRecord `json:"records"`
}

type hubPush struct {
	Origin  string            `json:"origin,omitempty"`
	Records []VersionedRecord `json:"records"`
}

// watchLoop follows the hub's update stream, resyncing from scratch after
// every disconnect.
func (r *ReplStore) watchLoop() {
	defer r.wg.Done()
	backoff := r.cfg.RetryMin
	for r.ctx.Err() == nil {
		if !r.isConnected() {
			if err := r.resync(r.ctx); err != nil {
				if r.ctx.Err() != nil {
					return
				}
				select {
				case <-time.After(backoff):
				case <-r.ctx.Done():
					return
				}
				backoff = min(backoff*2, r.cfg.RetryMax)
				continue
			}
			r.log.Info("hub link established", "hub", r.cfg.HubURL, "seq", r.cursor())
			backoff = r.cfg.RetryMin
		}
		if err := r.watchOnce(); err != nil {
			if r.ctx.Err() != nil {
				return
			}
			r.setConnected(false)
			r.log.Warn("hub link lost; degrading to local-only", "err", err)
		}
	}
}

// pushLoop drains pending local writes to the hub as they appear, so a
// winner discovered here reaches the fleet promptly even while the watch
// long-poll is parked.
func (r *ReplStore) pushLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.RetryMax)
	defer ticker.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-r.wake:
		case <-ticker.C: // retry tick for writes stranded by a partition
		}
		if r.isConnected() {
			r.pushPending(r.ctx)
		}
	}
}

// resync is the reconnect protocol: pull the hub's full state, merge it
// locally under LWW, then push every local record (which covers both
// pending writes and anything the hub lost in a restart). On success the
// replica is connected with a fresh watch cursor.
func (r *ReplStore) resync(ctx context.Context) error {
	var state hubState
	if err := r.getJSON(ctx, "/v1/state", &state); err != nil {
		return err
	}
	for _, rec := range state.Records {
		if _, err := MergeLWW(r.local, rec); err != nil {
			return fmt.Errorf("store: merging hub state: %w", err)
		}
	}
	keys, err := r.local.List()
	if err != nil {
		return err
	}
	push := hubPush{Origin: r.origin}
	for _, k := range keys {
		vr, ok, err := r.local.Get(k)
		if err != nil {
			return err
		}
		if ok {
			push.Records = append(push.Records, vr)
		}
	}
	var resp struct {
		Seq uint64 `json:"seq"`
	}
	if len(push.Records) > 0 {
		if err := r.postJSON(ctx, "/v1/push", push, &resp); err != nil {
			return err
		}
		if resp.Seq > state.Seq {
			state.Seq = resp.Seq
		}
	}
	pushed := make(map[Key]uint64, len(push.Records))
	for _, vr := range push.Records {
		pushed[vr.Key] = vr.Version
	}
	r.mu.Lock()
	r.hubSeq = state.Seq
	// Only clear pending entries the push actually covered: a Put that
	// raced in after the List above stays pending for the push loop.
	for k, vr := range r.pending {
		if pv, ok := pushed[k]; ok && pv >= vr.Version {
			delete(r.pending, k)
		}
	}
	r.connected = true
	r.lastSync = time.Now()
	r.mu.Unlock()
	return nil
}

// watchOnce performs one long-poll and merges whatever it returns.
func (r *ReplStore) watchOnce() error {
	var state hubState
	path := fmt.Sprintf("/v1/watch?since=%d&wait=%s", r.cursor(), r.cfg.PollWait)
	if err := r.getJSON(r.ctx, path, &state); err != nil {
		return err
	}
	for _, rec := range state.Records {
		applied, err := MergeLWW(r.local, rec)
		if err != nil {
			return fmt.Errorf("store: merging hub update: %w", err)
		}
		if applied {
			r.log.Debug("merged peer record", "key", rec.Key.String(), "peer", rec.Origin)
		}
	}
	r.mu.Lock()
	if state.Seq > r.hubSeq {
		r.hubSeq = state.Seq
	}
	r.lastSync = time.Now()
	r.mu.Unlock()
	return nil
}

// pushPending sends the pending set in one batch, clearing the entries
// that made it.
func (r *ReplStore) pushPending(ctx context.Context) {
	r.mu.Lock()
	if len(r.pending) == 0 {
		r.mu.Unlock()
		return
	}
	keys := make([]Key, 0, len(r.pending))
	for k := range r.pending {
		keys = append(keys, k)
	}
	sortKeys(keys)
	// Key order, so the hub assigns sequence numbers to a flush's records
	// deterministically regardless of map iteration.
	batch := make([]VersionedRecord, 0, len(keys))
	for _, k := range keys {
		batch = append(batch, r.pending[k])
	}
	r.mu.Unlock()

	var resp struct {
		Seq uint64 `json:"seq"`
	}
	if err := r.postJSON(ctx, "/v1/push", hubPush{Origin: r.origin, Records: batch}, &resp); err != nil {
		if ctx.Err() != nil {
			// The context, not the hub, aborted the push (shutdown or
			// flush deadline); the link may be fine.
			r.log.Debug("push aborted", "records", len(batch), "err", err)
			return
		}
		r.setConnected(false)
		r.log.Warn("push to hub failed; writes kept pending", "records", len(batch), "err", err)
		return
	}
	r.mu.Lock()
	for i, k := range keys {
		// A newer local write may have replaced the pending entry while
		// the push was in flight; only clear what was actually sent.
		if cur, ok := r.pending[k]; ok && cur.Version == batch[i].Version {
			delete(r.pending, k)
		}
	}
	if resp.Seq > r.hubSeq {
		r.hubSeq = resp.Seq
	}
	r.lastSync = time.Now()
	r.mu.Unlock()
}

func (r *ReplStore) isConnected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.connected
}

func (r *ReplStore) setConnected(v bool) {
	r.mu.Lock()
	r.connected = v
	r.mu.Unlock()
}

func (r *ReplStore) cursor() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hubSeq
}

func (r *ReplStore) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.HubURL+path, nil)
	if err != nil {
		return err
	}
	return r.doJSON(req, out)
}

func (r *ReplStore) postJSON(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.HubURL+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return r.doJSON(req, out)
}

func (r *ReplStore) doJSON(req *http.Request, out any) error {
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("store: hub %s: status %d: %s", req.URL.Path, resp.StatusCode, bytes.TrimSpace(body))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
