// Conformance suite: every Backend implementation — MemStore, FileStore,
// KVStore, ReplStore — must satisfy the same contract: CAS-versioned
// puts, byte-identical round trips, sorted listings, watch notification,
// tenant and environment isolation through the Store view, and (where
// the backend is durable) persistence across a reopen. The suite lives
// in package store_test so it can stand up a real replication hub.
package store_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/dynfb/store"
	"repro/dynfb/store/hub"
)

// backendFixture builds a fresh backend, and optionally reopens "the
// same storage" to test durability (nil reopen = not durable).
type backendFixture struct {
	name   string
	open   func(t *testing.T) store.Backend
	reopen func(t *testing.T, old store.Backend) store.Backend
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// startHub runs a replication hub on an httptest server, torn down with
// the test.
func startHub(t *testing.T) string {
	t.Helper()
	h, err := hub.New(hub.Config{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

func fixtures() []backendFixture {
	return []backendFixture{
		{
			name: "mem",
			open: func(t *testing.T) store.Backend { return store.NewMemStore() },
		},
		{
			name: "file",
			open: func(t *testing.T) store.Backend {
				fs, err := store.OpenFile(filepath.Join(t.TempDir(), "policies.json"))
				if err != nil {
					t.Fatal(err)
				}
				return fs
			},
			reopen: func(t *testing.T, old store.Backend) store.Backend {
				path := old.(*store.FileStore).Path()
				if err := old.Close(); err != nil {
					t.Fatal(err)
				}
				fs, err := store.OpenFile(path)
				if err != nil {
					t.Fatal(err)
				}
				return fs
			},
		},
		{
			name: "kv",
			open: func(t *testing.T) store.Backend {
				kv, err := store.OpenKV(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				return kv
			},
			reopen: func(t *testing.T, old store.Backend) store.Backend {
				dir := old.(*store.KVStore).Dir()
				if err := old.Close(); err != nil {
					t.Fatal(err)
				}
				kv, err := store.OpenKV(dir)
				if err != nil {
					t.Fatal(err)
				}
				return kv
			},
		},
		{
			name: "repl",
			open: func(t *testing.T) store.Backend {
				rs, err := store.OpenRepl(store.ReplConfig{
					HubURL: startHub(t),
					Origin: "conformance-1",
					Logger: quietLogger(),
				})
				if err != nil {
					t.Fatal(err)
				}
				return rs
			},
			reopen: func(t *testing.T, old store.Backend) store.Backend {
				// "Reopen" for a replica: drain it (flushing its writes to
				// the hub) and attach a fresh replica, whose bootstrap
				// resync must recover the state.
				hubURL := old.(*store.ReplStore).HubURL()
				if err := old.Close(); err != nil {
					t.Fatal(err)
				}
				rs, err := store.OpenRepl(store.ReplConfig{
					HubURL: hubURL,
					Origin: "conformance-2",
					Logger: quietLogger(),
				})
				if err != nil {
					t.Fatal(err)
				}
				return rs
			},
		},
	}
}

func confKey(section, env string) store.Key {
	return store.Key{Section: section, Env: env}
}

func confRecord(section string) store.Record {
	return store.Record{
		Section:        section,
		Fingerprint:    store.Fingerprint{GoMaxProcs: 8, Workers: 4, VariantsHash: store.VariantsHash([]string{"a", "b"})},
		Winner:         "a",
		WinnerOverhead: 0.125,
		Rounds:         3,
		Policies: []store.PolicyRecord{
			{Name: "a", TimesSampled: 3, TimesChosen: 3, MeanOverhead: 0.12, LastOverhead: 0.125},
			{Name: "b", TimesSampled: 3, TimesChosen: 0, MeanOverhead: 0.4, LastOverhead: 0.39},
		},
		UpdatedUnix: 1700000000,
	}
}

func TestBackendConformance(t *testing.T) {
	for _, fx := range fixtures() {
		t.Run(fx.name, func(t *testing.T) { runConformance(t, fx) })
	}
}

func runConformance(t *testing.T, fx backendFixture) {
	t.Run("missing", func(t *testing.T) {
		b := fx.open(t)
		defer b.Close()
		if _, ok, err := b.Get(confKey("sec", "env1")); ok || err != nil {
			t.Fatalf("empty backend Get: ok=%v err=%v", ok, err)
		}
		keys, err := b.List()
		if err != nil || len(keys) != 0 {
			t.Fatalf("empty backend List: %v %v", keys, err)
		}
	})

	t.Run("round-trip-byte-identical", func(t *testing.T) {
		b := fx.open(t)
		defer b.Close()
		rec := confRecord("sec")
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		stored, err := b.Put(store.VersionedRecord{
			Key: confKey("sec", rec.Fingerprint.Hash()), Clock: 1, Record: rec,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if stored.Version == 0 {
			t.Error("Put assigned no version")
		}
		got, ok, err := b.Get(confKey("sec", rec.Fingerprint.Hash()))
		if !ok || err != nil {
			t.Fatalf("Get: ok=%v err=%v", ok, err)
		}
		raw, err := json.Marshal(got.Record)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(want) {
			t.Errorf("record not byte-identical:\n got %s\nwant %s", raw, want)
		}
	})

	t.Run("cas", func(t *testing.T) {
		b := fx.open(t)
		defer b.Close()
		rec := confRecord("sec")
		k := confKey("sec", rec.Fingerprint.Hash())
		first, err := b.Put(store.VersionedRecord{Key: k, Clock: 1, Record: rec}, 0)
		if err != nil {
			t.Fatal(err)
		}
		// A second blind create must conflict: someone got there first.
		if _, err := b.Put(store.VersionedRecord{Key: k, Clock: 1, Record: rec}, 0); !errors.Is(err, store.ErrConflict) {
			t.Fatalf("blind second create: err=%v, want ErrConflict", err)
		}
		// A stale expected version must conflict.
		if _, err := b.Put(store.VersionedRecord{Key: k, Clock: 2, Record: rec}, first.Version+7); !errors.Is(err, store.ErrConflict) {
			t.Fatalf("stale version: err=%v, want ErrConflict", err)
		}
		// The correct expected version must succeed and advance.
		second, err := b.Put(store.VersionedRecord{Key: k, Clock: 2, Record: rec}, first.Version)
		if err != nil {
			t.Fatal(err)
		}
		if second.Version <= first.Version {
			t.Errorf("version did not advance: %d -> %d", first.Version, second.Version)
		}
		// Concurrent CAS writers: exactly the right number of increments
		// survive when every writer retries on conflict.
		var wg sync.WaitGroup
		var applied atomic.Int64
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					for {
						cur, ok, err := b.Get(k)
						if err != nil || !ok {
							t.Errorf("get: ok=%v err=%v", ok, err)
							return
						}
						next := cur
						next.Clock = cur.Clock + 1
						if _, err := b.Put(next, cur.Version); err != nil {
							if errors.Is(err, store.ErrConflict) {
								continue
							}
							t.Errorf("put: %v", err)
							return
						}
						applied.Add(1)
						break
					}
				}
			}()
		}
		wg.Wait()
		final, ok, err := b.Get(k)
		if !ok || err != nil {
			t.Fatalf("final get: ok=%v err=%v", ok, err)
		}
		if want := second.Clock + uint64(applied.Load()); final.Clock != want {
			t.Errorf("clock = %d, want %d (lost or duplicated CAS updates)", final.Clock, want)
		}
	})

	t.Run("list-sorted", func(t *testing.T) {
		b := fx.open(t)
		defer b.Close()
		for _, k := range []store.Key{
			{Tenant: "t2", Section: "s1", Env: "e1"},
			{Tenant: "t1", Section: "s2", Env: "e2"},
			{Tenant: "t1", Section: "s2", Env: "e1"},
			{Tenant: "t1", Section: "s1", Env: "e1"},
		} {
			rec := confRecord(k.Section)
			if _, err := b.Put(store.VersionedRecord{Key: k, Clock: 1, Record: rec}, 0); err != nil {
				t.Fatal(err)
			}
		}
		keys, err := b.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 4 {
			t.Fatalf("got %d keys, want 4", len(keys))
		}
		want := []store.Key{
			{Tenant: "t1", Section: "s1", Env: "e1"},
			{Tenant: "t1", Section: "s2", Env: "e1"},
			{Tenant: "t1", Section: "s2", Env: "e2"},
			{Tenant: "t2", Section: "s1", Env: "e1"},
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Errorf("keys[%d] = %v, want %v", i, keys[i], want[i])
			}
		}
	})

	t.Run("watch", func(t *testing.T) {
		b := fx.open(t)
		defer b.Close()
		var notified atomic.Int64
		cancel := b.Watch(func(vr store.VersionedRecord) { notified.Add(1) })
		rec := confRecord("sec")
		if _, err := b.Put(store.VersionedRecord{Key: confKey("sec", "e1"), Clock: 1, Record: rec}, 0); err != nil {
			t.Fatal(err)
		}
		if notified.Load() != 1 {
			t.Errorf("watch fired %d times after one put", notified.Load())
		}
		cancel()
		if _, err := b.Put(store.VersionedRecord{Key: confKey("sec", "e2"), Clock: 1, Record: rec}, 0); err != nil {
			t.Fatal(err)
		}
		if notified.Load() != 1 {
			t.Errorf("watch fired after cancel")
		}
	})

	t.Run("rejects-bad-keys", func(t *testing.T) {
		b := fx.open(t)
		defer b.Close()
		rec := confRecord("sec")
		if _, err := b.Put(store.VersionedRecord{Key: store.Key{Section: "", Env: "e"}, Record: rec}, 0); err == nil {
			t.Error("keyless section accepted")
		}
		if _, err := b.Put(store.VersionedRecord{Key: store.Key{Section: "sec", Env: ""}, Record: rec}, 0); err == nil {
			t.Error("keyless env accepted")
		}
		if _, err := b.Put(store.VersionedRecord{
			Key: confKey("other", "e"), Record: confRecord("sec"),
		}, 0); err == nil {
			t.Error("section/key mismatch accepted")
		}
	})

	t.Run("tenant-and-env-isolation", func(t *testing.T) {
		b := fx.open(t)
		defer b.Close()
		alice := store.NewTenantStore(b, "alice")
		bob := store.NewTenantStore(b, "bob")

		recA := confRecord("sec")
		recA.Winner = "a"
		if err := alice.Save(recA); err != nil {
			t.Fatal(err)
		}
		recB := confRecord("sec")
		recB.Winner = "b"
		if err := bob.Save(recB); err != nil {
			t.Fatal(err)
		}
		got, ok, err := alice.Load("sec")
		if !ok || err != nil || got.Winner != "a" {
			t.Fatalf("alice sees %+v ok=%v err=%v, want her own winner a", got.Winner, ok, err)
		}
		got, ok, err = bob.Load("sec")
		if !ok || err != nil || got.Winner != "b" {
			t.Fatalf("bob sees %+v ok=%v err=%v, want his own winner b", got.Winner, ok, err)
		}

		// Environment isolation within one tenant: LoadFor is exact.
		otherEnv := recA
		otherEnv.Fingerprint.Workers = 99
		otherEnv.Winner = "b"
		if err := alice.Save(otherEnv); err != nil {
			t.Fatal(err)
		}
		el := alice.(store.EnvLoader)
		got, ok, err = el.LoadFor("sec", recA.Fingerprint)
		if !ok || err != nil || got.Winner != "a" {
			t.Fatalf("LoadFor(original env) = %q ok=%v err=%v, want a", got.Winner, ok, err)
		}
		got, ok, err = el.LoadFor("sec", otherEnv.Fingerprint)
		if !ok || err != nil || got.Winner != "b" {
			t.Fatalf("LoadFor(other env) = %q ok=%v err=%v, want b", got.Winner, ok, err)
		}
		if _, ok, _ := el.LoadFor("sec", store.Fingerprint{Workers: 12345}); ok {
			t.Error("LoadFor invented a record for an unknown environment")
		}
	})

	t.Run("merge-lww", func(t *testing.T) {
		b := fx.open(t)
		defer b.Close()
		k := confKey("sec", "e1")
		older := store.VersionedRecord{Key: k, Clock: 5, Origin: "x", Record: confRecord("sec")}
		newer := store.VersionedRecord{Key: k, Clock: 9, Origin: "y", Record: confRecord("sec")}
		newer.Record.Winner = "b"
		if applied, err := store.MergeLWW(b, newer); err != nil || !applied {
			t.Fatalf("merging into empty: applied=%v err=%v", applied, err)
		}
		if applied, err := store.MergeLWW(b, older); err != nil || applied {
			t.Fatalf("older record applied over newer: applied=%v err=%v", applied, err)
		}
		got, _, _ := b.Get(k)
		if got.Record.Winner != "b" {
			t.Errorf("winner = %q after LWW, want b", got.Record.Winner)
		}
	})

	if fx.reopen != nil {
		t.Run("reopen", func(t *testing.T) {
			b := fx.open(t)
			rec := confRecord("sec")
			k := confKey("sec", rec.Fingerprint.Hash())
			want, _ := json.Marshal(rec)
			if _, err := b.Put(store.VersionedRecord{Key: k, Clock: 3, Record: rec}, 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ { // extra sections survive too
				sec := fmt.Sprintf("sec%d", i)
				r := confRecord(sec)
				if _, err := b.Put(store.VersionedRecord{Key: confKey(sec, "e"), Clock: 1, Record: r}, 0); err != nil {
					t.Fatal(err)
				}
			}
			b2 := fx.reopen(t, b)
			defer b2.Close()
			got, ok, err := b2.Get(k)
			if !ok || err != nil {
				t.Fatalf("reopened Get: ok=%v err=%v", ok, err)
			}
			raw, _ := json.Marshal(got.Record)
			if string(raw) != string(want) {
				t.Errorf("record changed across reopen:\n got %s\nwant %s", raw, want)
			}
			if got.Clock != 3 {
				t.Errorf("clock = %d across reopen, want 3", got.Clock)
			}
			keys, err := b2.List()
			if err != nil || len(keys) != 6 {
				t.Fatalf("reopened List: %d keys (err=%v), want 6", len(keys), err)
			}
		})
	}
}
