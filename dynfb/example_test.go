package dynfb_test

import (
	"fmt"
	"time"

	"repro/dynfb"
)

// The basic pattern: give a parallel section several variants of its body
// and let dynamic feedback pick the one with the least measured overhead.
func ExampleNewSection() {
	results := make([]int, 1000)
	double := func(ctx *dynfb.Ctx, i int) { results[i] = i * 2 }
	shift := func(ctx *dynfb.Ctx, i int) { results[i] = i << 1 }

	sec, err := dynfb.NewSection(dynfb.Config{
		Workers:          2,
		TargetSampling:   time.Millisecond,
		TargetProduction: 100 * time.Millisecond,
	},
		dynfb.Variant{Name: "multiply", Body: double},
		dynfb.Variant{Name: "shift", Body: shift},
	)
	if err != nil {
		panic(err)
	}
	sec.Run(0, len(results))
	fmt.Println(results[21])
	// Output: 42
}

// Instrumented mutexes make the overhead measurement meaningful: lock
// acquisitions and spinning are charged to the variant that performs them.
func ExampleCtx_Lock() {
	mu := dynfb.NewMutex()
	total := 0
	sec, err := dynfb.NewSection(dynfb.Config{Workers: 4},
		dynfb.Variant{Name: "locked-sum", Body: func(ctx *dynfb.Ctx, i int) {
			ctx.Lock(mu)
			total += i
			ctx.Unlock(mu)
		}},
	)
	if err != nil {
		panic(err)
	}
	sec.Run(0, 100)
	fmt.Println(total)
	// Output: 4950
}

// AddOverhead reports costs that are not expressed through locks, letting
// the controller compare algorithmic variants (§1's "the best algorithm
// depends on the input").
func ExampleCtx_AddOverhead() {
	sec, err := dynfb.NewSection(dynfb.Config{
		Workers:          1,
		TargetSampling:   time.Millisecond,
		TargetProduction: time.Hour,
	},
		dynfb.Variant{Name: "wasteful", Body: func(ctx *dynfb.Ctx, i int) {
			ctx.AddOverhead(100 * time.Microsecond) // redundant recomputation
		}},
		dynfb.Variant{Name: "lean", Body: func(ctx *dynfb.Ctx, i int) {}},
	)
	if err != nil {
		panic(err)
	}
	sec.Run(0, 100000)
	stats := sec.VariantStats()
	fmt.Println(stats[sec.BestKnown()].Name)
	// Output: lean
}
