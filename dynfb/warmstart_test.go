package dynfb

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/dynfb/store"
)

// leanAndWaste builds a two-variant workload with an unambiguous winner:
// "lean" reports no overhead, "waste" charges far more overhead than its
// busy time at every iteration.
func leanAndWaste() []Variant {
	body := func(ctx *Ctx, i int) { spin(20 * time.Microsecond) }
	return []Variant{
		{Name: "lean", Body: body},
		{Name: "waste", Body: func(ctx *Ctx, i int) {
			body(ctx, i)
			ctx.AddOverhead(200 * time.Microsecond)
		}},
	}
}

// samplingBeforeFirstProduction counts the sampling intervals before the
// section first left the sampling phase. A production interval cut short
// by the end of the run is recorded as "partial", so any non-sampling
// record marks the production entry.
func samplingBeforeFirstProduction(t *testing.T, s *Section) int {
	t.Helper()
	samples := s.Samples()
	for n, smp := range samples {
		if smp.Kind != "sampling" {
			if n == 0 {
				t.Fatalf("first interval is %q, want sampling", smp.Kind)
			}
			return n
		}
	}
	t.Fatalf("no production interval in %d samples", len(samples))
	return 0
}

func warmConfig(st store.Store) Config {
	return Config{
		Name:             "lean-vs-waste",
		Store:            st,
		Workers:          2,
		TargetSampling:   2 * time.Millisecond,
		TargetProduction: 200 * time.Millisecond,
	}
}

// TestWarmStartShortensSampling is the subsystem's acceptance test: a
// restarted process with a warm store reaches its production phase after
// sampling only the recorded winner, instead of every variant, and picks
// the same winner.
func TestWarmStartShortensSampling(t *testing.T) {
	st, err := store.OpenFile(filepath.Join(t.TempDir(), "policies.json"))
	if err != nil {
		t.Fatal(err)
	}
	const iters = 4000

	// Cold start: the first process must sample every variant.
	cold, err := NewSection(warmConfig(st), leanAndWaste()...)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarted() {
		t.Fatal("cold section claims warm start against an empty store")
	}
	cold.Run(0, iters)
	if n := samplingBeforeFirstProduction(t, cold); n < 2 {
		t.Fatalf("cold start sampled %d intervals before production, want every variant", n)
	}
	coldWinner, ok := cold.LastChosen()
	if !ok {
		t.Fatal("cold run entered no production phase")
	}
	if name := cold.VariantStats()[coldWinner].Name; name != "lean" {
		t.Fatalf("cold winner = %s, want lean", name)
	}
	// Run persists automatically; the record must be on disk now.
	rec, found, err := st.Load("lean-vs-waste")
	if err != nil || !found {
		t.Fatalf("no persisted record: found=%v err=%v", found, err)
	}
	if rec.Winner != "lean" {
		t.Fatalf("persisted winner = %s, want lean", rec.Winner)
	}

	// "Restart": a fresh process opens the same store file.
	st2, err := store.OpenFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	cfg := warmConfig(st2)
	cfg.WarmStart = true
	warm, err := NewSection(cfg, leanAndWaste()...)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted() {
		t.Fatal("matching record did not warm-start the section")
	}
	warm.Run(0, iters)
	warmWinner, ok := warm.LastChosen()
	if !ok {
		t.Fatal("warm run entered no production phase")
	}
	if name := warm.VariantStats()[warmWinner].Name; name != "lean" {
		t.Errorf("warm winner = %s, want the persisted winner lean", name)
	}
	// The measurable benefit: the first round samples only the winner.
	if n := samplingBeforeFirstProduction(t, warm); n != 1 {
		t.Errorf("warm start sampled %d intervals before production, want 1", n)
	}
	snap := warm.StatsSnapshot()
	if !snap.WarmStarted || snap.Winner != "lean" {
		t.Errorf("snapshot = %+v, want warm-started lean winner", snap)
	}
}

func TestWarmStartFingerprintMismatchFallsBackToFullSampling(t *testing.T) {
	st := store.NewMemStore()
	cold, err := NewSection(warmConfig(st), leanAndWaste()...)
	if err != nil {
		t.Fatal(err)
	}
	cold.Run(0, 4000)
	if _, found, _ := st.Load("lean-vs-waste"); !found {
		t.Fatal("no persisted record")
	}

	// Same store, different worker count: the fingerprint must not match.
	cfg := warmConfig(st)
	cfg.WarmStart = true
	cfg.Workers = 1
	other, err := NewSection(cfg, leanAndWaste()...)
	if err != nil {
		t.Fatal(err)
	}
	if other.WarmStarted() {
		t.Error("record learned at 2 workers warm-started a 1-worker section")
	}
	other.Run(0, 4000)
	if n := samplingBeforeFirstProduction(t, other); n < 2 {
		t.Errorf("mismatched fingerprint sampled %d intervals, want full sampling", n)
	}

	// Same worker count, different variant set: also a miss.
	cfg = warmConfig(st)
	cfg.WarmStart = true
	extra := append(leanAndWaste(), Variant{Name: "third", Body: func(ctx *Ctx, i int) {}})
	third, err := NewSection(cfg, extra...)
	if err != nil {
		t.Fatal(err)
	}
	if third.WarmStarted() {
		t.Error("record for a two-variant set warm-started a three-variant section")
	}
}

// TestReseedSeedsLiveSection exercises the fleet's live warm-start path: a
// section booted against an empty store cannot warm-start, but once a peer
// publishes a winner to the shared store, Reseed picks it up and the next
// run samples only the winner.
func TestReseedSeedsLiveSection(t *testing.T) {
	st := store.NewMemStore()
	cfg := warmConfig(st)
	cfg.WarmStart = true
	late, err := NewSection(cfg, leanAndWaste()...)
	if err != nil {
		t.Fatal(err)
	}
	if late.WarmStarted() {
		t.Fatal("section warm-started against an empty store")
	}
	if late.Reseed() {
		t.Fatal("Reseed claimed success against an empty store")
	}

	// A peer learns the winner and publishes it to the shared store.
	cold, err := NewSection(warmConfig(st), leanAndWaste()...)
	if err != nil {
		t.Fatal(err)
	}
	cold.Run(0, 4000)
	if _, found, _ := st.Load("lean-vs-waste"); !found {
		t.Fatal("peer run persisted nothing")
	}

	if !late.Reseed() {
		t.Fatal("Reseed missed the peer's record")
	}
	if !late.WarmStarted() {
		t.Error("Reseed did not mark the section warm")
	}
	if late.Reseed() {
		t.Error("second Reseed claimed to seed again")
	}
	late.Run(0, 4000)
	if n := samplingBeforeFirstProduction(t, late); n != 1 {
		t.Errorf("reseeded section sampled %d intervals before production, want 1", n)
	}
	if w, ok := late.LastChosen(); !ok || late.VariantStats()[w].Name != "lean" {
		t.Errorf("reseeded winner not the fleet's: ok=%v", ok)
	}

	// A section that already found its own winner must refuse a reseed.
	if cold.Reseed() {
		t.Error("Reseed overwrote a section's own winner")
	}
}

// TestConcurrentSectionsSharedStore exercises concurrent Section writers
// against one FileStore, with StatsSnapshot readers in flight; run under
// -race this checks the locking of the whole persistence path.
func TestConcurrentSectionsSharedStore(t *testing.T) {
	st, err := store.OpenFile(filepath.Join(t.TempDir(), "policies.json"))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *Section {
		cfg := warmConfig(st)
		cfg.Name = name
		s, err := NewSection(cfg, leanAndWaste()...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	secs := []*Section{mk("alpha"), mk("beta"), mk("gamma")}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for _, s := range secs {
		readers.Add(1)
		go func(s *Section) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.StatsSnapshot()
					_ = s.Persist()
				}
			}
		}(s)
	}
	var runs sync.WaitGroup
	for _, s := range secs {
		runs.Add(1)
		go func(s *Section) {
			defer runs.Done()
			for i := 0; i < 3; i++ {
				s.Run(0, 1500)
			}
		}(s)
	}
	runs.Wait()
	close(stop)
	readers.Wait()
	names, err := st.Sections()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Errorf("store sections = %v, want alpha beta gamma", names)
	}
}

func TestConfigValidation(t *testing.T) {
	ok := Variant{Name: "ok", Body: func(*Ctx, int) {}}
	cases := map[string]Config{
		"negative workers":        {Workers: -1},
		"absurd workers":          {Workers: maxWorkers + 1},
		"negative sampling":       {TargetSampling: -time.Millisecond},
		"negative production":     {TargetProduction: -time.Second},
		"sampling > production":   {TargetSampling: time.Second, TargetProduction: time.Millisecond},
		"negative lock pair cost": {LockPairCost: -time.Nanosecond},
		"warm start sans store":   {WarmStart: true},
		"store sans name":         {Store: store.NewMemStore()},
	}
	for name, cfg := range cases {
		if _, err := NewSection(cfg, ok); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	dup := Variant{Name: "ok", Body: func(*Ctx, int) {}}
	if _, err := NewSection(Config{}, ok, dup); err == nil {
		t.Error("duplicate variant names accepted")
	}
	// Explicit names may not collide with generated placeholder names
	// either, since store records are keyed by name.
	if _, err := NewSection(Config{}, Variant{Body: func(*Ctx, int) {}}, Variant{Name: "variant0", Body: func(*Ctx, int) {}}); err == nil {
		t.Error("collision with generated variant name accepted")
	}
}
