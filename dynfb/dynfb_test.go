package dynfb

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// spin burns roughly d of CPU without sleeping, so measurements reflect
// busy time on any scheduler.
func spin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

func TestNewSectionValidation(t *testing.T) {
	if _, err := NewSection(Config{}); err == nil {
		t.Error("no variants accepted")
	}
	if _, err := NewSection(Config{}, Variant{Name: "x"}); err == nil {
		t.Error("nil body accepted")
	}
	s, err := NewSection(Config{}, Variant{Name: "ok", Body: func(*Ctx, int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Workers <= 0 || s.cfg.TargetSampling <= 0 || s.cfg.TargetProduction <= 0 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
	if s.pairCost <= 0 {
		t.Error("lock pair cost not calibrated")
	}
}

func TestAllIterationsExecuteExactlyOnce(t *testing.T) {
	const n = 5000
	var touched [n]int32
	body := func(ctx *Ctx, i int) {
		atomic.AddInt32(&touched[i], 1)
	}
	s, err := NewSection(Config{
		Workers: 4, TargetSampling: time.Millisecond, TargetProduction: 5 * time.Millisecond,
	},
		Variant{Name: "a", Body: body},
		Variant{Name: "b", Body: body},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0, n)
	for i := range touched {
		if touched[i] != 1 {
			t.Fatalf("iteration %d executed %d times", i, touched[i])
		}
	}
}

func TestEmptyRange(t *testing.T) {
	ran := int32(0)
	s, err := NewSection(Config{Workers: 2}, Variant{Name: "a", Body: func(*Ctx, int) {
		atomic.AddInt32(&ran, 1)
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5, 5)
	s.Run(7, 3)
	if ran != 0 {
		t.Errorf("body ran %d times on empty ranges", ran)
	}
}

func TestMutexProtectsCounter(t *testing.T) {
	// A shared counter incremented under an instrumented mutex must come
	// out exact: Lock/Unlock provide real mutual exclusion.
	mu := &Mutex{}
	var count int64
	sec, err := NewSection(Config{Workers: 4, TargetSampling: time.Millisecond},
		Variant{Name: "locked", Body: func(ctx *Ctx, i int) {
			ctx.Lock(mu)
			count++
			ctx.Unlock(mu)
		}})
	if err != nil {
		t.Fatal(err)
	}
	sec.Run(0, 20000)
	if count != 20000 {
		t.Errorf("count = %d, want 20000 (mutual exclusion violated)", count)
	}
}

func TestSelectsLowOverheadVariantByInjectedOverhead(t *testing.T) {
	// Variant "wasteful" reports large explicit overhead; "lean" reports
	// none. The controller must sample both and choose "lean" — this is
	// deterministic on any machine.
	work := func(ctx *Ctx, i int) { spin(50 * time.Microsecond) }
	s, err := NewSection(Config{
		Workers:          2,
		TargetSampling:   2 * time.Millisecond,
		TargetProduction: time.Hour,
	},
		Variant{Name: "wasteful", Body: func(ctx *Ctx, i int) {
			work(ctx, i)
			ctx.AddOverhead(40 * time.Microsecond)
		}},
		Variant{Name: "lean", Body: work},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0, 2000)
	samples := s.Samples()
	if len(samples) < 3 {
		t.Fatalf("samples = %+v, want sampling×2 + production/partial", samples)
	}
	var sawProduction bool
	for _, smp := range samples {
		if smp.Kind == "production" || smp.Kind == "partial" {
			if smp.Name != "lean" && smp.Kind == "production" {
				t.Errorf("production variant = %s, want lean", smp.Name)
			}
			sawProduction = true
		}
	}
	if !sawProduction {
		t.Error("no production interval recorded")
	}
	if got := s.ctl.PolicyName(s.BestKnown()); got != "lean" {
		t.Errorf("BestKnown = %s, want lean", got)
	}
	st := s.VariantStats()
	if st[1].TimesChosen < 1 {
		t.Errorf("lean never chosen: %+v", st)
	}
}

func TestAdaptsWhenEnvironmentChanges(t *testing.T) {
	// The environment flips which variant is wasteful; with spanning
	// intervals and a short production interval the section must resample
	// and switch (the paper's core adaptivity claim).
	var phase int32 // 0: variant a wasteful; 1: variant b wasteful
	mk := func(idx int32) func(*Ctx, int) {
		return func(ctx *Ctx, i int) {
			spin(30 * time.Microsecond)
			if atomic.LoadInt32(&phase) == idx {
				ctx.AddOverhead(50 * time.Microsecond)
			}
		}
	}
	s, err := NewSection(Config{
		Workers:          2,
		TargetSampling:   2 * time.Millisecond,
		TargetProduction: 10 * time.Millisecond,
		SpanExecutions:   true,
	},
		Variant{Name: "a", Body: mk(0)},
		Variant{Name: "b", Body: mk(1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0, 3000)
	first := s.ctl.PolicyName(s.BestKnown())
	if first != "b" {
		t.Logf("first selection = %s (timing-dependent; samples %+v)", first, s.Samples())
	}
	atomic.StoreInt32(&phase, 1)
	// Keep running; resampling must eventually prefer "a".
	deadline := time.Now().Add(3 * time.Second)
	adapted := false
	for time.Now().Before(deadline) {
		s.Run(0, 3000)
		if s.ctl.PolicyName(s.BestKnown()) == "a" {
			adapted = true
			break
		}
	}
	if !adapted {
		t.Errorf("never adapted to environment change; stats %+v", s.VariantStats())
	}
}

func TestEarlyCutoffSkipsRemainingVariants(t *testing.T) {
	body := func(ctx *Ctx, i int) { spin(20 * time.Microsecond) }
	s, err := NewSection(Config{
		Workers:          2,
		TargetSampling:   2 * time.Millisecond,
		TargetProduction: time.Hour,
		EarlyCutoff:      true,
	},
		Variant{Name: "first", Body: body, Cutoff: CutoffWaiting},
		Variant{Name: "second", Body: body},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0, 1500)
	for _, smp := range s.Samples() {
		if smp.Kind == "sampling" && smp.Name == "second" {
			t.Errorf("second variant was sampled despite cut-off: %+v", s.Samples())
		}
	}
}

func TestSamplesContiguousAndLabeled(t *testing.T) {
	body := func(ctx *Ctx, i int) { spin(10 * time.Microsecond) }
	s, err := NewSection(Config{
		Workers: 2, TargetSampling: time.Millisecond, TargetProduction: 4 * time.Millisecond,
	},
		Variant{Name: "x", Body: body}, Variant{Name: "y", Body: body},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0, 4000)
	samples := s.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for i, smp := range samples {
		if smp.End < smp.Start {
			t.Errorf("sample %d has End < Start: %+v", i, smp)
		}
		if smp.Overhead < 0 || smp.Overhead > 1 {
			t.Errorf("sample %d overhead out of [0,1]: %v", i, smp.Overhead)
		}
		if smp.Name == "" || smp.Kind == "" {
			t.Errorf("sample %d unlabeled: %+v", i, smp)
		}
	}
}

func TestContentionDrivesSelection(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 CPUs for real lock contention")
	}
	shared := &Mutex{}
	var sink int64
	coarse := func(ctx *Ctx, i int) {
		ctx.Lock(shared)
		spin(60 * time.Microsecond)
		sink++
		ctx.Unlock(shared)
	}
	fine := func(ctx *Ctx, i int) {
		spin(60 * time.Microsecond)
		ctx.Lock(shared)
		sink++
		ctx.Unlock(shared)
	}
	s, err := NewSection(Config{
		Workers:          4,
		TargetSampling:   3 * time.Millisecond,
		TargetProduction: time.Hour,
	},
		Variant{Name: "coarse", Body: coarse},
		Variant{Name: "fine", Body: fine},
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0, 3000)
	if got := s.ctl.PolicyName(s.BestKnown()); got != "fine" {
		t.Errorf("BestKnown = %s, want fine; stats %+v", got, s.VariantStats())
	}
}

func TestAutoTunePassThrough(t *testing.T) {
	body := func(ctx *Ctx, i int) { spin(10 * time.Microsecond) }
	s, err := NewSection(Config{
		Workers: 2, TargetSampling: time.Millisecond,
		TargetProduction: time.Hour, AutoTuneProduction: true,
	},
		Variant{Name: "a", Body: body}, Variant{Name: "b", Body: body})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0, 5000)
	// With auto-tuning and a calm workload, the first production interval
	// must have been derived from the history rather than the 1h setting;
	// the run completing at all (with production samples recorded in
	// bounded time) is the observable effect here. Just assert history
	// exists and the controller accepted the option.
	if len(s.Samples()) == 0 {
		t.Fatal("no samples")
	}
}

func TestRecommendedProduction(t *testing.T) {
	body := func(ctx *Ctx, i int) { spin(20 * time.Microsecond) }
	s, err := NewSection(Config{
		Workers: 2, TargetSampling: time.Millisecond, TargetProduction: 5 * time.Millisecond,
	},
		Variant{Name: "a", Body: body}, Variant{Name: "b", Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.RecommendedProduction(); ok {
		t.Error("recommendation before any samples")
	}
	s.Run(0, 8000)
	rec, ok := s.RecommendedProduction()
	if !ok {
		t.Fatal("no recommendation after a run with several rounds")
	}
	if rec < time.Millisecond {
		t.Errorf("recommendation %v below sampling interval", rec)
	}
}

func TestVariantStatsShape(t *testing.T) {
	body := func(ctx *Ctx, i int) { spin(5 * time.Microsecond) }
	s, err := NewSection(Config{Workers: 2, TargetSampling: time.Millisecond},
		Variant{Name: "only", Body: body})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0, 500)
	st := s.VariantStats()
	if len(st) != 1 || st[0].Name != "only" {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].TimesSampled < 1 {
		t.Errorf("TimesSampled = %d", st[0].TimesSampled)
	}
}
