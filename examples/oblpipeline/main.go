// OBL pipeline walkthrough: compiles the paper's Figure 1 example program
// with the full compiler pipeline and shows each stage — commutativity
// analysis, the three synchronization policies (the Figure 2 view is the
// aggressive output), code sizes, and a simulated execution under every
// policy and under dynamic feedback.
//
// Run with:
//
//	go run ./examples/oblpipeline
package main

import (
	_ "embed"
	"fmt"

	"repro/internal/interp"
	"repro/internal/obl/ast"
	"repro/internal/obl/syncopt"
	"repro/oblc"
)

// figure1 is the paper's Figure 1 program in OBL: bodies accumulate
// pairwise interactions under per-object locks. It lives in its own .obl
// file so oblc vet covers it alongside the other bundled programs.
//
//go:embed figure1.obl
var figure1 string

func main() {
	c, err := oblc.Compile(figure1)
	if err != nil {
		panic(err)
	}

	fmt.Println("=== 1. commutativity analysis (§2) ===")
	for _, rep := range c.Reports {
		if rep.Parallel {
			fmt.Printf("loop in %s at %s commutes -> parallel section %s\n", rep.Func, rep.Pos, rep.Section)
		} else {
			fmt.Printf("loop in %s at %s stays serial: %s\n", rep.Func, rep.Pos, rep.Reason)
		}
	}

	fmt.Println("\n=== 2. the original policy (default lock placement, Figure 1) ===")
	printMethod(c, syncopt.Original, "one_interaction")

	fmt.Println("=== 3. the aggressive policy (lock lifted interprocedurally, Figure 2) ===")
	printMethod(c, syncopt.Aggressive, "interactions")
	printFunc(c, syncopt.Aggressive, "forces")

	fmt.Println("=== 4. code sizes (Table 1 accounting) ===")
	sz := c.Sizes()
	fmt.Printf("serial %d B; per-policy %v B; multi-version %d B\n\n",
		sz.Serial, sz.PerPolicy, sz.Dynamic)

	fmt.Println("=== 5. simulated execution on 8 processors ===")
	for _, policy := range []string{"original", "bounded", "aggressive", "dynamic"} {
		res, err := interp.Run(c.Parallel, interp.Options{Procs: 8, Policy: policy})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s  time %-10v  acquire/release pairs %-8d  result %s\n",
			policy, res.Time, res.Counters.Acquires, res.Output[0])
	}
}

func printMethod(c *oblc.Compiled, policy syncopt.Policy, name string) {
	prog := c.PolicyPrograms[policy]
	for _, cls := range prog.Classes {
		for _, m := range cls.Methods {
			if m.Name == name {
				fmt.Println(ast.PrintFunc(m))
			}
		}
	}
}

func printFunc(c *oblc.Compiled, policy syncopt.Policy, name string) {
	prog := c.PolicyPrograms[policy]
	for _, f := range prog.Funcs {
		if f.Name == name {
			fmt.Println(ast.PrintFunc(f))
		}
	}
}
