// N-body: the paper's motivating workload (Figure 1) on real goroutines.
//
// Each body accumulates force contributions from its interaction partners.
// Three synchronization policies mirror the compiler-generated versions of
// the paper:
//
//   - original:   lock the body around every single accumulation
//   - bounded:    lock the body once per partner (coalesced updates)
//   - aggressive: lock the body once for its whole interaction list
//
// Dynamic feedback samples all three and runs the one with the least
// measured overhead on this machine.
//
// Run with:
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"math"
	"time"

	"repro/dynfb"
)

const (
	nbodies  = 512
	partners = 64
)

type body struct {
	pos  float64
	fsum float64
	n    float64
	mu   *dynfb.Mutex
}

func interact(a, b float64) float64 {
	return a * b / (1 + math.Abs(a-b))
}

func main() {
	bodies := make([]*body, nbodies)
	for i := range bodies {
		bodies[i] = &body{pos: float64(i%97) / 9.7, mu: dynfb.NewMutex()}
	}
	partner := func(i, k int) *body { return bodies[(i*31+k*17+7)%nbodies] }

	original := func(ctx *dynfb.Ctx, i int) {
		b := bodies[i]
		for k := 0; k < partners; k++ {
			v := interact(b.pos, partner(i, k).pos)
			ctx.Lock(b.mu)
			b.fsum += v
			ctx.Unlock(b.mu)
			ctx.Lock(b.mu)
			b.n++
			ctx.Unlock(b.mu)
		}
	}
	bounded := func(ctx *dynfb.Ctx, i int) {
		b := bodies[i]
		for k := 0; k < partners; k++ {
			v := interact(b.pos, partner(i, k).pos)
			ctx.Lock(b.mu)
			b.fsum += v
			b.n++
			ctx.Unlock(b.mu)
		}
	}
	aggressive := func(ctx *dynfb.Ctx, i int) {
		b := bodies[i]
		ctx.Lock(b.mu)
		for k := 0; k < partners; k++ {
			v := interact(b.pos, partner(i, k).pos)
			b.fsum += v
			b.n++
		}
		ctx.Unlock(b.mu)
	}

	sec, err := dynfb.NewSection(dynfb.Config{
		TargetSampling:   3 * time.Millisecond,
		TargetProduction: 60 * time.Millisecond,
		SpanExecutions:   true, // the force passes are short; span them (§4.4)
	},
		dynfb.Variant{Name: "original", Body: original},
		dynfb.Variant{Name: "bounded", Body: bounded},
		dynfb.Variant{Name: "aggressive", Body: aggressive},
	)
	if err != nil {
		panic(err)
	}

	const passes = 60
	start := time.Now()
	for pass := 0; pass < passes; pass++ {
		sec.Run(0, nbodies)
	}
	elapsed := time.Since(start)

	var total float64
	for _, b := range bodies {
		total += b.fsum
	}
	fmt.Printf("forces computed over %d passes in %v; checksum %.4f\n", passes, elapsed, total)
	fmt.Println("per-variant history:")
	for _, st := range sec.VariantStats() {
		fmt.Printf("  %-11s sampled %d×, chosen %d×, mean overhead %.4f\n",
			st.Name, st.TimesSampled, st.TimesChosen, st.MeanOverhead)
	}
	if idx, ok := sec.LastChosen(); ok {
		fmt.Printf("best policy on this machine: %s\n", sec.VariantStats()[idx].Name)
	}
}
