// Adaptive algorithm selection: "the best algorithm to solve a given
// problem often depends on the combination of input and hardware platform"
// (§1 of the paper). The program sorts a stream of chunks whose character
// changes over time — first nearly-sorted, then adversarially shuffled.
// Two sort variants compete:
//
//   - insertion: linear on nearly-sorted data, quadratic on random data
//   - heapsort:  n·log n regardless
//
// Each variant reports its wasted effort through Ctx.AddOverhead (extra
// comparisons beyond the input size), so the dynamic feedback controller
// can pick the right algorithm for the current regime — and switch when
// the input character changes, thanks to periodic resampling.
//
// Run with:
//
//	go run ./examples/adaptivesort
package main

import (
	"fmt"
	"time"

	"repro/dynfb"
)

const (
	chunkLen  = 256
	numChunks = 4000
)

func makeChunk(i int, shuffled bool) []int {
	chunk := make([]int, chunkLen)
	for j := range chunk {
		chunk[j] = j
	}
	if shuffled {
		state := uint64(i*2654435761 + 12345)
		for j := chunkLen - 1; j > 0; j-- {
			state = state*6364136223846793005 + 1442695040888963407
			k := int(state>>33) % (j + 1)
			chunk[j], chunk[k] = chunk[k], chunk[j]
		}
	} else if i%8 == 0 && chunkLen > 2 {
		chunk[0], chunk[1] = chunk[1], chunk[0] // nearly sorted
	}
	return chunk
}

// insertion sorts and returns the number of element moves (its effort).
func insertion(a []int) int {
	moves := 0
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
			moves++
		}
		a[j+1] = v
	}
	return moves
}

// heapsort sorts and returns the number of sift steps (its effort).
func heapsort(a []int) int {
	steps := 0
	n := len(a)
	sift := func(lo, hi int) {
		root := lo
		for {
			child := 2*root + 1
			if child >= hi {
				return
			}
			if child+1 < hi && a[child] < a[child+1] {
				child++
			}
			if a[root] >= a[child] {
				return
			}
			a[root], a[child] = a[child], a[root]
			root = child
			steps++
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		sift(0, i)
	}
	return steps
}

func main() {
	var shuffled bool // the "environment"; flips halfway

	// Effort beyond ~n is wasted work: report it as overhead so the
	// controller can compare the algorithms on equal terms.
	const nsPerStep = 3
	mkVariant := func(name string, sort func([]int) int) dynfb.Variant {
		return dynfb.Variant{Name: name, Body: func(ctx *dynfb.Ctx, i int) {
			chunk := makeChunk(i, shuffled)
			effort := sort(chunk)
			if waste := effort - chunkLen; waste > 0 {
				ctx.AddOverhead(time.Duration(waste*nsPerStep) * time.Nanosecond)
			}
		}}
	}

	sec, err := dynfb.NewSection(dynfb.Config{
		TargetSampling:   3 * time.Millisecond,
		TargetProduction: 30 * time.Millisecond,
		SpanExecutions:   true, // keep adapting across Run calls
	},
		mkVariant("insertion", insertion),
		mkVariant("heapsort", heapsort),
	)
	if err != nil {
		panic(err)
	}

	report := func(regime string) {
		idx, ok := sec.LastChosen()
		if !ok {
			fmt.Printf("%-22s -> no production phase yet\n", regime)
			return
		}
		fmt.Printf("%-22s -> best algorithm: %s\n", regime, sec.VariantStats()[idx].Name)
	}

	// Regime 1: nearly-sorted chunks. Insertion sort should win.
	for round := 0; round < 12; round++ {
		sec.Run(0, numChunks)
	}
	report("nearly-sorted input")

	// Regime 2: shuffled chunks. Heapsort should take over after the next
	// resampling rounds.
	shuffled = true
	for round := 0; round < 12; round++ {
		sec.Run(0, numChunks)
	}
	report("shuffled input")

	if rec, ok := sec.RecommendedProduction(); ok {
		fmt.Printf("eq. 9 recommends a production interval of ~%v for this drift rate\n", rec.Round(time.Millisecond))
	}
	fmt.Println("variant history:")
	for _, st := range sec.VariantStats() {
		fmt.Printf("  %-10s sampled %d×, chosen %d×, mean overhead %.4f\n",
			st.Name, st.TimesSampled, st.TimesChosen, st.MeanOverhead)
	}
}
