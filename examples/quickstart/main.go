// Quickstart: the smallest useful dynamic feedback program.
//
// A histogram is filled in parallel under two locking disciplines: one
// global mutex (cheap to acquire once, contended) versus one mutex per
// bucket (more acquisitions, no contention). Which is faster depends on
// the machine and the key distribution — so instead of choosing statically,
// the section samples both and runs the winner.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/dynfb"
)

const (
	buckets = 64
	items   = 200_000
)

func main() {
	histGlobal := make([]int, buckets)
	histSharded := make([]int, buckets)

	global := dynfb.NewMutex()
	shard := make([]*dynfb.Mutex, buckets)
	for i := range shard {
		shard[i] = dynfb.NewMutex()
	}

	key := func(i int) int { return (i*2654435761 + 7) % buckets }

	// Both variants compute the same histogram; only the synchronization
	// discipline differs.
	variants := []dynfb.Variant{
		{Name: "global-lock", Body: func(ctx *dynfb.Ctx, i int) {
			k := key(i)
			ctx.Lock(global)
			histGlobal[k]++
			ctx.Unlock(global)
		}},
		{Name: "per-bucket", Body: func(ctx *dynfb.Ctx, i int) {
			k := key(i)
			ctx.Lock(shard[k])
			histSharded[k]++
			ctx.Unlock(shard[k])
		}},
	}
	sec, err := dynfb.NewSection(dynfb.Config{
		TargetSampling:   5 * time.Millisecond,
		TargetProduction: 200 * time.Millisecond,
	}, variants...)
	if err != nil {
		panic(err)
	}

	sec.Run(0, items)

	total := 0
	for k := 0; k < buckets; k++ {
		total += histGlobal[k] + histSharded[k]
	}
	fmt.Printf("filled %d entries (histograms are split across variants)\n", total)
	fmt.Println("measurement history:")
	for _, s := range sec.Samples() {
		fmt.Printf("  %-10s %-12s overhead=%.4f (locking %.4f, waiting %.4f)\n",
			s.Kind, s.Name, s.Overhead, s.LockingOverhead, s.WaitingOverhead)
	}
	for _, st := range sec.VariantStats() {
		fmt.Printf("variant %-12s sampled %d times, chosen %d times, mean overhead %.4f\n",
			st.Name, st.TimesSampled, st.TimesChosen, st.MeanOverhead)
	}
}
